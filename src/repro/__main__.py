"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare``   -- build the representative methods on one dataset and
  print a Table-4-style comparison.
* ``batch``     -- compare DILI's vectorized ``get_batch`` against the
  scalar ``get`` loop (wall-clock next to simulated cost).
* ``workload``  -- run one of the paper's named workload mixes against
  a chosen method and report throughput.
* ``mixed``     -- batched reads interleaved with batched writes on one
  serving DILI; reports write speedup and the plan-maintenance
  counters (patches / subtree splices / full recompiles).
* ``datasets``  -- summarize the five synthetic datasets.
* ``structure`` -- build a DILI and print its Table-6 statistics.
* ``bench``     -- run the paper's table/figure benchmarks (pytest
  under the hood), optionally filtered and teed to a report file.
* ``report``    -- run the core experiments programmatically (no
  pytest) and write a markdown report.
* ``snapshot``  -- build/open a durable index directory, checkpoint it,
  and optionally leave fresh inserts in the WAL tail.
* ``recover``   -- replay snapshot + WAL from a durable directory and
  report what survived (exit 3 when records failed to replay).
* ``chaos``     -- run the seeded resilience chaos harness: mixed
  workload under scheduled fault injection, asserting zero wrong
  reads, online repair, and convergence back to HEALTHY.
* ``plan``      -- the memory-mapped plan store: ``plan write``
  publishes the compiled flat plan (and optionally a WAL-tail delta),
  ``plan open`` opens the serving ladder and reports which rung
  serves, ``plan audit`` eagerly verifies every plan artifact, and
  ``plan chaos`` runs the corruption sweep (zero wrong reads on every
  rung).
* ``audit``     -- one-shot offline integrity sweep of a whole state
  directory: snapshot header + WAL framing + plan files and delta
  chains.  Exit 0 clean / 3 recoverable damage / 4 unrecoverable.
* ``check``     -- static analysis and sanitizers: ``check lint`` runs
  the CHK rule set over source trees, ``check sanitize`` measures a
  mixed workload with the tree sanitizer on vs off, and
  ``check audit-wal`` scans a durability directory for frame/CRC/LSN
  damage without replaying it.
* ``shard``     -- sharded multi-process serving: ``shard init``
  partitions a dataset into per-shard plan directories, ``shard
  serve`` scatter/gathers an audited read workload over worker
  processes, ``shard bench`` measures batch-read scaling by worker
  count plus per-shard tuning vs one global config, ``shard status``
  reports per-shard key counts, plan generations, ops counters,
  health, restart ledgers and circuit-breaker states, and ``shard
  chaos`` runs the seeded fault-injection audits (SIGKILL, SIGSTOP
  hangs, slow workers, crash loops) and exits nonzero unless every
  read audited clean.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import DILI, tree_stats
from repro.bench.harness import (
    DATASETS,
    current_scale,
    make_index,
    measure_batch_lookup,
    measure_lookup,
    method_names,
    query_sample,
)
from repro.bench.reporting import print_table
from repro.data import DATASET_NAMES, load_dataset, split_initial
from repro.baselines.base import UnsupportedOperation
from repro.workloads.generator import NAMED_SPECS, make_workload
from repro.workloads.runner import run_workload


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="logn",
        choices=sorted(DATASET_NAMES),
        help="synthetic dataset to generate (default: logn)",
    )
    parser.add_argument(
        "--keys",
        type=int,
        default=50_000,
        help="number of keys to generate (default: 50000)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset RNG seed"
    )


def cmd_compare(args: argparse.Namespace) -> int:
    scale = current_scale()
    keys = load_dataset(args.dataset, args.keys, seed=args.seed)
    queries = query_sample(keys, min(3_000, args.keys // 4))
    rows = []
    for method in method_names(representative_only=True):
        index = make_index(method)
        index.bulk_load(keys)
        ns, misses, _ = measure_lookup(index, queries, scale)
        rows.append([method, ns, misses, index.memory_bytes() / 1e6])
    rows.sort(key=lambda r: r[1])
    print_table(
        f"Point lookups on {args.dataset} ({args.keys:,} keys)",
        ["Method", "lookup (ns)", "LL misses", "memory (MB)"],
        rows,
    )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    scale = current_scale()
    keys = load_dataset(args.dataset, args.keys, seed=args.seed)
    queries = query_sample(keys, args.queries)
    index = DILI()
    index.bulk_load(keys)
    m = measure_batch_lookup(index, queries, scale)
    print_table(
        f"Batch lookups on {args.dataset} "
        f"({args.keys:,} keys, {args.queries:,} queries)",
        ["Metric", "value"],
        [
            ["sim lookup (ns/op)", m.sim_ns_per_op],
            ["sim LL misses/op", m.sim_misses_per_op],
            ["scalar loop (ms)", m.scalar_s * 1e3],
            ["batch call (ms)", m.batch_s * 1e3],
            ["compile+first batch (ms)", m.compile_s * 1e3],
            ["speedup (x)", m.speedup],
        ],
        first_col_width=26,
    )
    return 0


def cmd_mixed(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        measure_batch_write,
        measure_mixed_workload,
    )

    scale = current_scale()
    keys = load_dataset(args.dataset, args.keys, seed=args.seed)
    w = measure_batch_write(keys, scale, writes=args.writes)
    print_table(
        f"Batch vs scalar inserts on {args.dataset} "
        f"({args.keys:,} keys, {w.writes:,} writes, serving state)",
        ["Metric", "value"],
        [
            ["scalar loop (ms)", w.scalar_s * 1e3],
            ["batch call (ms)", w.batch_s * 1e3],
            ["speedup (x)", w.speedup],
            ["tree-only speedup (x)", w.tree_speedup],
            ["sim parity", 1.0 if w.sim_parity else 0.0],
        ],
        first_col_width=26,
    )
    m = measure_mixed_workload(
        keys, write_fraction=args.write_fraction
    )
    print_table(
        f"Mixed workload on {args.dataset} "
        f"({m.ops:,} ops, {args.write_fraction:.0%} writes)",
        ["Metric", "value"],
        [
            ["reads", float(m.reads)],
            ["writes", float(m.writes)],
            ["wall Mops", m.wall_mops],
            ["plan patches", float(m.patches)],
            ["subtree splices", float(m.subtree_recompiles)],
            ["full recompiles", float(m.full_recompiles)],
            ["plan alive", 1.0 if m.plan_alive else 0.0],
        ],
        first_col_width=26,
    )
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    scale = current_scale()
    if args.mix not in NAMED_SPECS:
        print(
            f"unknown mix {args.mix!r}; choose from "
            f"{sorted(NAMED_SPECS)}",
            file=sys.stderr,
        )
        return 2
    keys = load_dataset(args.dataset, args.keys, seed=args.seed)
    initial, pool = split_initial(keys, 0.5, seed=3)
    index = make_index(args.method)
    index.bulk_load(initial)
    spec = NAMED_SPECS[args.mix].scaled(min(args.ops, 2 * len(pool)))
    ops = make_workload(spec, keys, pool, seed=11)
    try:
        result = run_workload(
            index, ops, name=args.mix, cache_lines=scale.cache_lines
        )
    except UnsupportedOperation as exc:
        print(f"cannot run {args.mix} on {args.method}: {exc}",
              file=sys.stderr)
        return 2
    print(
        f"{args.method} on {args.dataset}/{args.mix}: "
        f"{result.sim_mops:.2f} Mops simulated "
        f"({result.sim_ns_per_op:.0f} ns/op), "
        f"{result.wall_mops:.3f} Mops wall-clock; "
        f"hits={result.hits:,} inserted={result.inserted:,} "
        f"deleted={result.deleted:,}"
    )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import hardness_report

    rows = []
    for name in DATASETS:
        keys = load_dataset(name, args.keys, seed=args.seed)
        gaps = np.diff(keys)
        report = hardness_report(keys)
        rows.append(
            [
                name,
                float(np.median(gaps)),
                float(gaps.max()),
                report.gap_cv,
                report.tail_ratio,
                report.conflict_rate * 1000.0,
            ]
        )
    print_table(
        f"Synthetic datasets ({args.keys:,} keys each)",
        ["Dataset", "med gap", "max gap", "gap CV", "tail share",
         "est conf/1K"],
        rows,
    )
    return 0


def cmd_structure(args: argparse.Namespace) -> int:
    keys = load_dataset(args.dataset, args.keys, seed=args.seed)
    index = DILI()
    index.bulk_load(keys)
    st = tree_stats(index)
    print_table(
        f"DILI structure on {args.dataset} ({args.keys:,} keys)",
        ["Metric", "value"],
        [
            ["pairs", float(st.num_pairs)],
            ["min height", float(st.min_height)],
            ["max height", float(st.max_height)],
            ["avg height", st.avg_height],
            ["internal nodes", float(st.internal_nodes)],
            ["leaf nodes", float(st.leaf_nodes)],
            ["nested leaves", float(st.nested_leaves)],
            ["conflicts / 1K keys", st.conflicts_per_1k],
            ["memory (MB)", st.memory_bytes / 1e6],
        ],
        first_col_width=24,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import subprocess
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        print(f"benchmarks directory not found at {bench_dir}",
              file=sys.stderr)
        return 2
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(bench_dir),
        # Plain pytest collection is scoped to tests/ (pyproject keeps
        # python_files at test_*.py); benchmarks opt back in here.
        "-o",
        "python_files=bench_*.py",
        "--benchmark-only",
        "-q",
    ]
    if args.filter:
        cmd += ["-k", args.filter]
    env = dict(os.environ, REPRO_SCALE=args.scale)
    if args.output:
        with open(args.output, "w") as fh:
            proc = subprocess.run(
                cmd, env=env, stdout=fh, stderr=subprocess.STDOUT
            )
        print(f"report written to {args.output}")
    else:
        proc = subprocess.run(cmd, env=env)
    return proc.returncode


def cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.experiments import CORE_EXPERIMENTS, run_report
    from repro.bench.harness import SCALES, BuildCache

    names = args.experiments or list(CORE_EXPERIMENTS)
    unknown = [n for n in names if n not in CORE_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiments {unknown}; choose from "
            f"{sorted(CORE_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    cache = BuildCache(SCALES[args.scale])
    report = run_report(cache, names)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.durability import DurableDILI

    index = DurableDILI(args.dir, sync=args.sync)
    if len(index) == 0:
        keys = load_dataset(args.dataset, args.keys, seed=args.seed)
        index.bulk_load(keys)
        print(
            f"bulk-loaded {len(index):,} {args.dataset} keys into "
            f"{args.dir}"
        )
    index.snapshot()
    print(
        f"snapshot written (last seqno {index.wal.last_seqno}, "
        f"{len(index):,} keys)"
    )
    if args.wal_tail > 0:
        rng = np.random.default_rng(args.seed + 1)
        added = 0
        while added < args.wal_tail:
            key = float(rng.uniform(0.0, 2.0 ** 52))
            if index.insert(key, "wal-tail"):
                added += 1
        print(
            f"left {added:,} inserts in the WAL tail "
            f"({index.wal.size_bytes():,} bytes, not snapshotted)"
        )
    index.validate()
    index.close()
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from repro.durability import recover

    try:
        result = recover(args.dir, validate=True)
    except (ValueError, AssertionError) as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"recovered {len(result.index):,} keys from {args.dir}: "
        f"snapshot seqno {result.snapshot_seqno}, "
        f"replayed {result.replayed} WAL records "
        f"(skipped {result.skipped} already snapshotted)"
    )
    if result.wal_truncated:
        print(
            f"WAL tail stopped early: {result.wal_reason} "
            f"(valid prefix {result.wal_valid_offset} bytes)"
        )
    print("validate() passed")
    if result.failed:
        # Recovery is lossy, not failed: the index is valid but some
        # WAL records could not be replayed.  Distinct exit code so
        # scripts can tell "complete" from "partial".
        print(
            f"warning: {result.failed} WAL record(s) failed to replay "
            f"and were skipped -- recovered state is incomplete",
            file=sys.stderr,
        )
        return 3
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.resilience import run_chaos

    report = run_chaos(
        num_keys=args.keys,
        rounds=args.rounds,
        batch=args.batch,
        write_fraction=args.write_fraction,
        injections=args.injections,
        seed=args.seed,
        with_locks=not args.no_locks,
        log=print if args.verbose else None,
    )
    kinds = ", ".join(sorted(report.kinds_injected)) or "none"
    rows = [
        ["reads checked", float(report.reads)],
        ["writes applied", float(report.writes)],
        ["wrong reads", float(report.wrong_reads)],
        ["injections", float(len(report.injected))],
        ["undetected", float(report.undetected)],
        ["false positives", float(report.false_positives)],
        ["repair steps", float(report.repair_steps)],
        ["max rounds degraded", float(report.max_steps_degraded)],
        ["plan splices", float(report.plan_splices)],
        ["plan drops", float(report.plan_drops)],
        ["full rebuilds", float(report.full_rebuilds)],
        ["wall (s)", report.wall_s],
    ]
    if report.lock_stats is not None:
        rows += [
            ["lock acquisitions", float(report.lock_stats["acquisitions"])],
            ["lock retries", float(report.lock_stats["retries"])],
            ["lock escalations", float(report.lock_stats["escalations"])],
            ["plan publishes", float(report.lock_stats["plan_publishes"])],
            ["plans retired", float(report.lock_stats["plans_retired"])],
            ["epoch pins", float(report.lock_stats["epoch_pins"])],
            ["lock-free batch reads",
             float(report.lock_stats.get("batch_reads", 0))],
        ]
    print(
        format_table(
            f"Chaos run: {args.keys:,} keys, {args.rounds} rounds, "
            f"seed {args.seed}",
            ["Metric", "value"],
            rows,
            first_col_width=24,
        )
    )
    print(f"fault kinds injected: {kinds}")
    print(f"final health: {report.final_health}")
    if not report.ok:
        print("chaos contract VIOLATED", file=sys.stderr)
        return 1
    print("chaos contract held: zero wrong reads, repaired online")
    return 0


def cmd_plan_write(args: argparse.Namespace) -> int:
    import time

    from repro.durability import DurableDILI
    from repro.planstore import PlanDirectory

    index = DurableDILI(args.dir)
    if len(index) == 0:
        keys = load_dataset(args.dataset, args.keys, seed=args.seed)
        index.bulk_load(keys)
        print(
            f"bulk-loaded {len(index):,} {args.dataset} keys into "
            f"{args.dir}"
        )
    start = time.perf_counter()
    generation = index.publish_plan()
    elapsed_ms = (time.perf_counter() - start) * 1e3
    path = PlanDirectory.for_state_dir(args.dir).base_path(generation)
    print(
        f"published generation {generation} at LSN "
        f"{index.wal.last_seqno} ({os.path.getsize(path):,} bytes, "
        f"{elapsed_ms:.1f} ms): {path}"
    )
    if args.tail:
        delta = index.publish_tail()
        if delta is None:
            print("WAL tail already covered; no delta written")
        else:
            print(f"published delta: {delta}")
    index.close()
    return 0


def cmd_plan_open(args: argparse.Namespace) -> int:
    import time

    from repro.planstore import MmapDILI

    start = time.perf_counter()
    served = MmapDILI(args.dir)
    open_ms = (time.perf_counter() - start) * 1e3
    rung_names = {1: "newest plan", 2: "older generation",
                  3: "recovery rebuild", 4: "DEGRADED"}
    print(
        f"{args.dir}: rung {served.rung} ({rung_names[served.rung]}), "
        f"open {open_ms:.2f} ms"
    )
    if served.generation is not None:
        print(
            f"  generation {served.generation} at LSN {served.wal_lsn}, "
            f"{len(served):,} keys"
        )
    for event in served.events:
        print(f"  {event}")
    if args.verify and served.rung <= 2:
        start = time.perf_counter()
        served.verify()
        print(
            f"  buffers verified in "
            f"{(time.perf_counter() - start) * 1e3:.1f} ms "
            f"(now serving rung {served.rung})"
        )
    served.close()
    return 0 if served.rung < 4 else 1


def cmd_plan_audit(args: argparse.Namespace) -> int:
    from repro.check import audit_plans

    report = audit_plans(args.dir)
    print(
        f"{report.directory}: {report.generations} generation(s) "
        f"({report.verified_generations} verified clean), "
        f"{report.deltas} delta(s), {report.quarantined} quarantined"
    )
    for finding in report.findings:
        print(f"  {finding.format()}")
    if report.clean:
        print("clean")
        return 0
    if report.damaged:
        print("unrecoverable plan damage", file=sys.stderr)
        return 4
    print("recoverable findings only; the serving ladder falls back")
    return 3


def cmd_plan_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.bench.reporting import format_table
    from repro.planstore import run_plan_chaos

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-plan-chaos-")
    result = run_plan_chaos(workdir, seed=args.seed, n_keys=args.keys)
    rows = [
        [run.kind, float(run.rung), float(run.expected_rung),
         float(run.wrong_reads), float(len(run.quarantined))]
        for run in result.runs
    ]
    print(
        format_table(
            f"Plan corruption sweep: seed {result.seed}, "
            f"{args.keys:,} keys per round",
            ["fault kind", "rung", "expected", "wrong", "quarantined"],
            rows,
            first_col_width=22,
        )
    )
    print(f"probes: {sum(run.probes for run in result.runs):,}, "
          f"wrong reads: {result.wrong_reads}")
    if not result.ok:
        print("plan chaos contract VIOLATED", file=sys.stderr)
        return 1
    print("plan chaos contract held: every rung correct, zero wrong reads")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.check import audit_directory, audit_plans

    if not os.path.isdir(args.dir):
        print(f"audit failed: {args.dir} is not a directory",
              file=sys.stderr)
        return 2
    try:
        wal_report = audit_directory(args.dir)
        plan_report = audit_plans(args.dir)
    except FileNotFoundError as exc:
        print(f"audit failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"{wal_report.directory}: snapshot seqno "
        f"{wal_report.snapshot_seqno}, {wal_report.wal_records} WAL "
        f"records ({wal_report.wal_valid_bytes:,} valid bytes)"
    )
    print(
        f"plans: {plan_report.generations} generation(s) "
        f"({plan_report.verified_generations} verified clean), "
        f"{plan_report.deltas} delta(s), "
        f"{plan_report.quarantined} quarantined"
    )
    findings = list(wal_report.findings) + list(plan_report.findings)
    for finding in findings:
        print(f"  {finding.format()}")
    if not findings:
        print("clean")
        return 0
    if wal_report.damaged or plan_report.damaged:
        print(
            "unrecoverable damage: some acknowledged state cannot be "
            "reconstructed",
            file=sys.stderr,
        )
        return 4
    print(
        "recoverable damage only: recovery/the serving ladder will "
        "route around it"
    )
    return 3


def _emit_findings(findings, fmt: str, clean_message: str) -> int:
    import json

    active = [f for f in findings if not f.waived]
    if fmt == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
        return 1 if active else 0
    for finding in active:
        print(finding.format())
    if active:
        print(f"{len(active)} finding(s)", file=sys.stderr)
        return 1
    print(clean_message)
    return 0


def cmd_check_lint(args: argparse.Namespace) -> int:
    from repro.check.dataflow import analyze_parsed
    from repro.check.lint import lint_parsed
    from repro.check.parsing import parse_paths

    paths = args.paths or ["src", "benchmarks"]
    include_waived = args.format == "json"
    # One parse per file, shared by the pattern rules (CHK001-009)
    # and the dataflow rules (CHK010-013).
    parsed = parse_paths(paths)
    findings = lint_parsed(parsed, include_waived=include_waived)
    findings += analyze_parsed(parsed, include_waived=include_waived)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return _emit_findings(
        findings, args.format,
        f"lint clean ({', '.join(str(p) for p in paths)})",
    )


def cmd_check_dataflow(args: argparse.Namespace) -> int:
    from repro.check.dataflow import analyze_paths

    paths = args.paths or ["src"]
    include_waived = args.format == "json"
    findings = analyze_paths(paths, include_waived=include_waived)
    return _emit_findings(
        findings, args.format,
        f"dataflow clean ({', '.join(str(p) for p in paths)})",
    )


def cmd_check_sanitize(args: argparse.Namespace) -> int:
    import time

    from repro.check import SanitizerViolation, TreeSanitizer, verify_tree

    keys = load_dataset(args.dataset, args.keys, seed=args.seed)
    initial, extra = split_initial(keys, 0.8)
    rng = np.random.default_rng(args.seed + 1)
    rounds = max(1, args.rounds)
    chunks = np.array_split(extra, rounds)

    def run(sanitizer: TreeSanitizer | None):
        index = DILI()
        index.sanitizer = sanitizer
        start = time.perf_counter()
        index.bulk_load(initial)
        for chunk in chunks:
            if len(chunk):
                index.insert_batch(chunk, [f"v{k}" for k in chunk])
            sample = rng.choice(initial, size=min(2048, len(initial)),
                                replace=False)
            index.get_batch(sample)
            victims = sample[: len(sample) // 8]
            index.update_batch(victims, ["updated"] * len(victims))
            index.delete_batch(victims)
            index.insert_batch(victims, ["restored"] * len(victims))
        elapsed = time.perf_counter() - start
        return elapsed, index

    try:
        base_elapsed, _ = run(None)
        sanitizer = TreeSanitizer()
        san_elapsed, index = run(sanitizer)
        verify_tree(index)
    except SanitizerViolation as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 1
    ratio = san_elapsed / base_elapsed if base_elapsed > 0 else float("inf")
    print(
        f"mixed workload on {len(initial):,} {args.dataset} keys, "
        f"{rounds} rounds of batched insert/read/update/delete"
    )
    print(f"  baseline      : {base_elapsed * 1e3:10.1f} ms")
    print(f"  sanitized     : {san_elapsed * 1e3:10.1f} ms")
    print(
        f"  overhead      : {ratio:10.2f}x  "
        f"({sanitizer.checks} checks, {sanitizer.full_checks} deep verifies)"
    )
    print("final verify_tree() passed")
    return 0


def cmd_check_audit_wal(args: argparse.Namespace) -> int:
    from repro.check import audit_directory

    try:
        report = audit_directory(args.dir)
    except FileNotFoundError as exc:
        print(f"audit failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"{report.directory}: snapshot seqno {report.snapshot_seqno}, "
        f"{report.wal_records} WAL records "
        f"({report.wal_valid_bytes:,} valid bytes)"
    )
    for finding in report.findings:
        print(f"  {finding.format()}")
    if report.clean:
        print("clean")
        return 0
    if report.damaged:
        print("damage found (not recoverable by WAL replay)",
              file=sys.stderr)
        return 1
    print("recoverable findings only (torn tail); recovery will truncate")
    return 0


def _print_shard_status(status: dict) -> None:
    from repro.bench.reporting import format_table

    router = status.get("router", {})
    print(
        f"{status['dir']}: generation {status['generation']}, "
        f"{status['num_shards']} shard(s), partition "
        f"{status['partition']}, health {status['health']}, "
        f"restarts {status['restarts']}, rebalances "
        f"{status['rebalances']}"
    )
    if router:
        print(
            f"router: {router.get('kind')} over "
            f"{len(router.get('boundaries', []))} boundary key(s), "
            f"{router.get('routed', 0):,} routed, "
            f"{router.get('corrected', 0):,} model misses corrected"
        )
    rows = []
    for i, shard in enumerate(status["shards"]):
        ops = shard.get("ops", {})
        sup = shard.get("supervision", {})
        rows.append(
            [
                f"{i}:{shard.get('name', '?')}",
                float(shard.get("keys", 0)),
                float(shard.get("generation") or 0),
                float(shard.get("rung") or 0),
                float(ops.get("reads", 0)),
                float(ops.get("writes", 0)),
                float(shard.get("wal_lsn", 0)),
                float(sup.get("restarts", 0)),
            ]
        )
    print(
        format_table(
            "Shards (health: "
            + ", ".join(
                str(s.get("health")) for s in status["shards"]
            )
            + ")",
            ["shard", "keys", "gen", "rung", "reads", "writes", "lsn",
             "rst"],
            rows,
            first_col_width=16,
        )
    )
    parts = []
    for i, shard in enumerate(status["shards"]):
        sup = shard.get("supervision", {})
        breaker = sup.get("breaker", {})
        state = breaker.get("state", "closed")
        up = "up" if sup.get("up", True) else "down"
        note = f"{i}:{state}/{up}"
        if sup.get("consecutive_failures"):
            note += f"({sup['consecutive_failures']} fails)"
        parts.append(note)
    print(
        f"supervision: {' '.join(parts)}; "
        f"{status.get('open_breakers', 0)} open breaker(s), "
        f"background probe "
        f"{'on' if status.get('supervise') else 'off'}"
    )


def _shard_dataset_params(args: argparse.Namespace) -> tuple[str, int, int]:
    """Dataset parameters for a sharded dir: the recorded ones win.

    ``shard init`` records (dataset, keys, seed) in ``dataset.json`` so
    ``serve`` audits against the keyset the directory was actually
    built from; the CLI flags only apply to directories without a
    record (and a mismatch between flags and record is reported).
    """
    import json

    path = os.path.join(args.dir, "dataset.json")
    try:
        with open(path, encoding="utf-8") as fh:
            rec = json.load(fh)
        dataset = str(rec["dataset"])
        num_keys = int(rec["keys"])
        seed = int(rec["seed"])
    except (OSError, ValueError, KeyError):
        return args.dataset, args.keys, args.seed
    if (dataset, num_keys, seed) != (args.dataset, args.keys, args.seed):
        print(
            f"using recorded dataset {dataset}/{num_keys}/seed {seed} "
            f"from {path} (flags ignored)"
        )
    return dataset, num_keys, seed


def cmd_shard_init(args: argparse.Namespace) -> int:
    import json

    from repro.sharding import ShardedDILI

    if os.path.isdir(args.dir) and os.listdir(args.dir):
        print(f"refusing to init non-empty directory {args.dir}",
              file=sys.stderr)
        return 2
    # mmap_mode="r" so concurrent worker processes share one page-cache
    # copy of the dataset instead of each materializing it.
    keys = load_dataset(
        args.dataset, args.keys, seed=args.seed, mmap_mode="r"
    )
    keys = np.asarray(keys)
    with ShardedDILI.create(
        args.dir,
        keys,
        list(range(len(keys))),
        num_shards=args.shards,
        partition=args.partition,
        tuning=args.tuning,
        processes=False,
        sync=args.sync,
    ) as index:
        status = index.status()
    with open(
        os.path.join(args.dir, "dataset.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(
            {"dataset": args.dataset, "keys": args.keys,
             "seed": args.seed},
            fh,
        )
    print(
        f"sharded {len(keys):,} {args.dataset} keys into "
        f"{args.shards} {args.partition} shard(s) "
        f"(tuning={args.tuning}) under {args.dir}"
    )
    _print_shard_status(status)
    return 0


def cmd_shard_serve(args: argparse.Namespace) -> int:
    import time

    from repro.sharding import ShardedDILI

    dataset, num_keys, seed = _shard_dataset_params(args)
    rng = np.random.default_rng(seed + 1)
    keys = np.asarray(
        load_dataset(dataset, num_keys, seed=seed, mmap_mode="r")
    )
    wrong = reads = 0
    wall = 0.0
    with ShardedDILI.open(
        args.dir, processes=not args.no_processes, sync=args.sync
    ) as index:
        for _ in range(args.rounds):
            idx = rng.integers(0, len(keys), size=args.batch)
            queries = keys[idx]
            t0 = time.perf_counter()
            got = index.get_batch(queries)
            wall += time.perf_counter() - t0
            reads += len(queries)
            wrong += sum(
                1 for g, e in zip(got, idx.tolist()) if g != int(e)
            )
        status = index.status()
    ops = reads / wall if wall > 0 else 0.0
    print(
        f"served {reads:,} audited reads in {args.rounds} batches: "
        f"{ops:,.0f} lookups/s, {wrong} wrong"
    )
    _print_shard_status(status)
    if wrong:
        print("serve audit FAILED: wrong reads", file=sys.stderr)
        return 1
    return 0


def cmd_shard_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        measure_shard_tuning,
        measure_sharded_throughput,
    )
    from repro.bench.reporting import print_table

    keys = np.asarray(
        load_dataset(args.dataset, args.keys, seed=args.seed,
                     mmap_mode="r")
    )
    workers = sorted({int(w) for w in args.workers.split(",")})
    m = measure_sharded_throughput(
        keys, worker_counts=workers, batch=args.batch
    )
    rows = [
        [f"{n} worker(s)", m.ops_per_s[n], m.scaling(n)]
        for n in m.worker_counts
    ]
    print_table(
        f"Sharded batch reads on {args.dataset} "
        f"({m.num_keys:,} keys, {m.batch:,}-key batches, "
        f"{m.cpu_count} CPU(s))",
        ["Workers", "lookups/s", "scaling x"],
        rows,
        first_col_width=14,
    )
    if m.wrong_reads:
        print(f"{m.wrong_reads} wrong reads", file=sys.stderr)
        return 1
    t = measure_shard_tuning(num_shards=args.shards)
    print_table(
        f"Per-shard tuning vs one global config "
        f"({t.num_shards} shards, mixed-distribution keys)",
        ["Variant", "sim cycles/op"],
        [
            [f"global {t.global_config}", t.global_cycles_per_op],
            ["per-shard " + "/".join(
                f"({o},{r})" for o, r in t.local_configs
            ), t.local_cycles_per_op],
        ],
        first_col_width=34,
    )
    print(f"per-shard tuning gain: {t.gain_pct:.2f}%")
    return 0


def cmd_shard_status(args: argparse.Namespace) -> int:
    from repro.sharding import ShardedDILI

    if not os.path.isdir(args.dir):
        print(f"{args.dir} is not a directory", file=sys.stderr)
        return 2
    # In-process workers: status inspection must not spawn processes
    # or contend with a live serving coordinator's directories.
    with ShardedDILI.open(args.dir, processes=False) as index:
        status = index.status()
    _print_shard_status(status)
    healthy = (
        status["health"] == "healthy"
        and status.get("open_breakers", 0) == 0
        and all(
            s.get("health") in (None, "healthy")
            for s in status["shards"]
        )
    )
    return 0 if healthy else 1


def cmd_shard_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.sharding.chaos import run_shard_chaos, run_supervision_chaos

    clean = True
    if args.schedule in ("kill", "both"):
        report = run_shard_chaos(seed=args.seed)
        clean = clean and report.clean
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            d = report.to_dict()
            print(
                f"kill schedule (seed {args.seed}): "
                f"{d['reads']:,} audited reads, "
                f"{d['wrong_reads']} wrong, {d['kills']} kills, "
                f"{d['restarts']} restarts, "
                f"{d['rebalances']} rebalances -> "
                f"{'clean' if report.clean else 'DIRTY'}"
            )
    if args.schedule in ("supervision", "both"):
        report = run_supervision_chaos(seed=args.seed)
        clean = clean and report.clean
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            d = report.to_dict()
            print(
                f"supervision schedule (seed {args.seed}): "
                f"{d['reads']:,} audited reads, "
                f"{d['wrong_reads']} wrong, "
                f"{d['unavailable_marks']} exact unavailability marks "
                f"({d['misreported_unavailability']} misreported), "
                f"hang replaced in {d['hang_recovery_seconds']}s, "
                f"breaker tripped after {d['failures_at_trip']} "
                f"failures, healed={d['healed']} -> "
                f"{'clean' if report.clean else 'DIRTY'}"
            )
            for event in report.events:
                print(f"  - {event}")
    return 0 if clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="Table-4-style method comparison"
    )
    _add_common(compare)
    compare.set_defaults(func=cmd_compare)

    batch = sub.add_parser(
        "batch", help="batch-vs-scalar lookup comparison on DILI"
    )
    _add_common(batch)
    batch.add_argument(
        "--queries",
        type=int,
        default=100_000,
        help="point queries per measurement (default: 100000)",
    )
    batch.set_defaults(func=cmd_batch)

    mixed = sub.add_parser(
        "mixed",
        help="batched mixed read/write workload with plan counters",
    )
    _add_common(mixed)
    mixed.add_argument(
        "--writes",
        type=int,
        default=256,
        help="fresh keys per write batch (default: 256)",
    )
    mixed.add_argument(
        "--write-fraction",
        type=float,
        default=0.05,
        help="write share of the mixed workload (default: 0.05)",
    )
    mixed.set_defaults(func=cmd_mixed)

    workload = sub.add_parser(
        "workload", help="run a named workload mix"
    )
    _add_common(workload)
    workload.add_argument(
        "--method",
        default="DILI",
        choices=method_names(),
        help="index to exercise (default: DILI)",
    )
    workload.add_argument(
        "--mix",
        default="Read-Heavy",
        help=f"one of {sorted(NAMED_SPECS)}",
    )
    workload.add_argument(
        "--ops", type=int, default=20_000, help="operations to run"
    )
    workload.set_defaults(func=cmd_workload)

    datasets = sub.add_parser("datasets", help="summarize the datasets")
    datasets.add_argument("--keys", type=int, default=20_000)
    datasets.add_argument("--seed", type=int, default=7)
    datasets.set_defaults(func=cmd_datasets)

    structure = sub.add_parser(
        "structure", help="DILI Table-6 statistics"
    )
    _add_common(structure)
    structure.set_defaults(func=cmd_structure)

    bench = sub.add_parser(
        "bench", help="run the paper's table/figure benchmarks"
    )
    bench.add_argument(
        "--filter",
        default="",
        help="pytest -k expression, e.g. 'table4 or fig7'",
    )
    bench.add_argument(
        "--scale",
        default="medium",
        choices=["small", "medium", "large"],
        help="benchmark scale (REPRO_SCALE)",
    )
    bench.add_argument(
        "--output", default="", help="tee the report to this file"
    )
    bench.set_defaults(func=cmd_bench)

    report = sub.add_parser(
        "report", help="markdown report of the core experiments"
    )
    report.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all core experiments)",
    )
    report.add_argument(
        "--scale",
        default="small",
        choices=["small", "medium", "large"],
        help="benchmark scale (default small for interactive use)",
    )
    report.add_argument(
        "-o", "--output", default="", help="write to this file"
    )
    report.set_defaults(func=cmd_report)

    snapshot = sub.add_parser(
        "snapshot",
        help="checkpoint a durable index directory (WAL + snapshot)",
    )
    _add_common(snapshot)
    snapshot.add_argument(
        "--dir", required=True, help="durable state directory"
    )
    snapshot.add_argument(
        "--wal-tail",
        type=int,
        default=0,
        help="inserts to apply AFTER the snapshot, left in the WAL "
        "for `recover` to replay (default: 0)",
    )
    snapshot.add_argument(
        "--no-sync",
        dest="sync",
        action="store_false",
        help="skip per-append fsync (faster, benchmark use only)",
    )
    snapshot.set_defaults(func=cmd_snapshot)

    recover_p = sub.add_parser(
        "recover",
        help="rebuild an index from snapshot + WAL and validate it",
    )
    recover_p.add_argument(
        "--dir", required=True, help="durable state directory"
    )
    recover_p.set_defaults(func=cmd_recover)

    chaos = sub.add_parser(
        "chaos",
        help="mixed workload under scheduled fault injection",
    )
    chaos.add_argument(
        "--keys", type=int, default=20_000,
        help="initial bulk-loaded keys (default: 20000)",
    )
    chaos.add_argument(
        "--rounds", type=int, default=60,
        help="workload rounds (default: 60)",
    )
    chaos.add_argument(
        "--batch", type=int, default=256,
        help="operations per batch (default: 256)",
    )
    chaos.add_argument(
        "--write-fraction", type=float, default=0.5,
        help="write share of the mix (default: 0.5)",
    )
    chaos.add_argument(
        "--injections", type=int, default=12,
        help="scheduled faults (default: 12)",
    )
    chaos.add_argument("--seed", type=int, default=7, help="master seed")
    chaos.add_argument(
        "--no-locks", action="store_true",
        help="skip the concurrency (stalled stripe) leg",
    )
    chaos.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-injection progress lines",
    )
    chaos.set_defaults(func=cmd_chaos)

    plan = sub.add_parser(
        "plan", help="memory-mapped plan store (publish / serve / audit)"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)

    plan_write = plan_sub.add_parser(
        "write",
        help="publish the compiled flat plan as a new base generation",
    )
    _add_common(plan_write)
    plan_write.add_argument(
        "--dir", required=True, help="durable state directory"
    )
    plan_write.add_argument(
        "--tail",
        action="store_true",
        help="also publish the WAL tail as a delta file",
    )
    plan_write.set_defaults(func=cmd_plan_write)

    plan_open = plan_sub.add_parser(
        "open",
        help="open the serving ladder and report which rung serves",
    )
    plan_open.add_argument(
        "--dir", required=True, help="durable state directory"
    )
    plan_open.add_argument(
        "--verify",
        action="store_true",
        help="eagerly CRC-verify the served plan's buffers",
    )
    plan_open.set_defaults(func=cmd_plan_open)

    plan_audit = plan_sub.add_parser(
        "audit",
        help="eagerly verify every plan file and delta chain",
    )
    plan_audit.add_argument(
        "--dir", required=True, help="durable state directory"
    )
    plan_audit.set_defaults(func=cmd_plan_audit)

    plan_chaos = plan_sub.add_parser(
        "chaos",
        help="corruption sweep: every fault kind, zero wrong reads",
    )
    plan_chaos.add_argument(
        "--workdir",
        default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    plan_chaos.add_argument("--seed", type=int, default=7, help="sweep seed")
    plan_chaos.add_argument(
        "--keys", type=int, default=400,
        help="keys per fault round (default: 400)",
    )
    plan_chaos.set_defaults(func=cmd_plan_chaos)

    audit_p = sub.add_parser(
        "audit",
        help="one-shot integrity sweep: snapshot + WAL + plan store",
    )
    audit_p.add_argument("dir", help="durable state directory")
    audit_p.set_defaults(func=cmd_audit)

    check = sub.add_parser(
        "check", help="static analysis and runtime sanitizers"
    )
    check_sub = check.add_subparsers(dest="check_command", required=True)

    lint = check_sub.add_parser(
        "lint",
        help="run every CHK rule (pattern + dataflow) over source trees",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; json includes pragma-waived findings",
    )
    lint.set_defaults(func=cmd_check_lint)

    dataflow = check_sub.add_parser(
        "dataflow",
        help="run only the interprocedural rules CHK010-CHK013",
    )
    dataflow.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src)",
    )
    dataflow.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; json includes pragma-waived findings",
    )
    dataflow.set_defaults(func=cmd_check_dataflow)

    sanitize = check_sub.add_parser(
        "sanitize",
        help="run a mixed workload with the tree sanitizer on vs off",
    )
    _add_common(sanitize)
    sanitize.add_argument(
        "--rounds",
        type=int,
        default=8,
        help="batched insert/read/update/delete rounds (default: 8)",
    )
    sanitize.set_defaults(func=cmd_check_sanitize)

    audit = check_sub.add_parser(
        "audit-wal",
        help="scan a durability directory for frame/CRC/LSN damage",
    )
    audit.add_argument(
        "--dir", required=True, help="durable state directory"
    )
    audit.set_defaults(func=cmd_check_audit_wal)

    shard = sub.add_parser(
        "shard", help="sharded multi-process serving"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_init = shard_sub.add_parser(
        "init",
        help="partition a dataset into per-shard plan directories",
    )
    _add_common(shard_init)
    shard_init.add_argument(
        "--dir", required=True, help="sharded state directory"
    )
    shard_init.add_argument(
        "--shards", type=int, default=2,
        help="shard count (default: 2)",
    )
    shard_init.add_argument(
        "--partition", default="range", choices=["range", "aligned"],
        help="range = quantile cuts; aligned = split the global tree "
        "at the root (trace-parity serving)",
    )
    shard_init.add_argument(
        "--tuning", default="local", choices=["local", "global", "none"],
        help="per-shard bulk-load parameter fitting (default: local)",
    )
    shard_init.add_argument(
        "--no-sync", dest="sync", action="store_false",
        help="skip per-append fsync (faster, benchmark use only)",
    )
    shard_init.set_defaults(func=cmd_shard_init)

    shard_serve = shard_sub.add_parser(
        "serve",
        help="serve an audited read workload over worker processes",
    )
    _add_common(shard_serve)
    shard_serve.add_argument(
        "--dir", required=True, help="sharded state directory"
    )
    shard_serve.add_argument(
        "--rounds", type=int, default=20,
        help="read batches to serve (default: 20)",
    )
    shard_serve.add_argument(
        "--batch", type=int, default=4_096,
        help="keys per batch (default: 4096)",
    )
    shard_serve.add_argument(
        "--no-processes", action="store_true",
        help="serve in-process instead of spawning workers",
    )
    shard_serve.add_argument(
        "--no-sync", dest="sync", action="store_false",
        help="skip per-append fsync on shard WALs",
    )
    shard_serve.set_defaults(func=cmd_shard_serve)

    shard_bench = shard_sub.add_parser(
        "bench",
        help="batch-read scaling by worker count + tuning comparison",
    )
    _add_common(shard_bench)
    shard_bench.add_argument(
        "--workers", default="1,2",
        help="comma-separated worker counts (default: 1,2)",
    )
    shard_bench.add_argument(
        "--batch", type=int, default=32_768,
        help="keys per measured get_batch call (default: 32768)",
    )
    shard_bench.add_argument(
        "--shards", type=int, default=3,
        help="shards in the tuning comparison (default: 3)",
    )
    shard_bench.set_defaults(func=cmd_shard_bench)

    shard_status = shard_sub.add_parser(
        "status",
        help="per-shard key counts, plan versions, ops and health",
    )
    shard_status.add_argument(
        "--dir", required=True, help="sharded state directory"
    )
    shard_status.set_defaults(func=cmd_shard_status)

    shard_chaos = shard_sub.add_parser(
        "chaos",
        help="seeded fault-injection audit: kills, hangs, slow "
        "workers, crash loops; exits nonzero unless clean",
    )
    shard_chaos.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed driving the whole schedule (default: 0)",
    )
    shard_chaos.add_argument(
        "--schedule", default="supervision",
        choices=["kill", "supervision", "both"],
        help="kill = SIGKILL + mid-rebalance kills; supervision = "
        "SIGSTOP hangs, slow workers and crash loops (default)",
    )
    shard_chaos.add_argument(
        "--json", action="store_true",
        help="print the full report(s) as JSON",
    )
    shard_chaos.set_defaults(func=cmd_shard_chaos)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
