"""Parse-once infrastructure shared by every static pass.

One ``repro check`` invocation parses each source file exactly once:
:func:`parse_paths` produces :class:`ParsedFile` records (source text,
AST, pragma map) that both the pattern lint (``repro.check.lint``) and
the interprocedural dataflow pass (``repro.check.dataflow``) consume.
The pragma machinery lives here too so both passes honor the same
waiver contract (``# repro-check: allow CHKxxx -- reason`` on any line
of the offending statement's span).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

_PRAGMA_RE = re.compile(r"#\s*repro-check:\s*allow\s+([A-Z0-9,\s]+)")


def pragma_lines(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rules waived on that line."""
    out: dict[int, frozenset[str]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if m:
            out[i] = frozenset(re.findall(r"CHK\d{3}", m.group(1)))
    return out


def waived_in_span(
    pragmas: dict[int, frozenset[str]], rule: str, first: int, last: int
) -> bool:
    """Is ``rule`` waived by a pragma on any line of ``[first, last]``?"""
    return any(rule in pragmas.get(line, ()) for line in range(first, last + 1))


@dataclass
class ParsedFile:
    """One source file, parsed once and shared between passes."""

    path: str
    source: str
    tree: ast.Module | None        # None when the file failed to parse
    error: SyntaxError | None = None
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)


def parse_source(source: str, path: str = "<string>") -> ParsedFile:
    """Parse one module's text; a syntax error is recorded, not raised."""
    try:
        tree: ast.Module | None = ast.parse(source, filename=path)
        error: SyntaxError | None = None
    except SyntaxError as exc:
        tree, error = None, exc
    return ParsedFile(path, source, tree, error, pragma_lines(source))


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def parse_paths(paths: Iterable[str | Path]) -> list[ParsedFile]:
    """Parse every .py file under ``paths``, each exactly once."""
    return [
        parse_source(f.read_text(encoding="utf-8"), str(f))
        for f in iter_python_files(paths)
    ]
