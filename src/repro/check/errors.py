"""Exception types for the correctness-tooling layer.

Kept dependency-free so hot-path modules (``repro.core.dili``) can raise
:class:`InvariantError` without importing the rest of ``repro.check``
(whose sanitizers import the core back).
"""

from __future__ import annotations


class InvariantError(AssertionError):
    """A structural invariant of the index (or its derived state) broke.

    Subclasses :class:`AssertionError` so existing callers that treat
    validation failures as assertion failures (crash-recovery triage,
    fault-injection tests) keep working -- but unlike a bare ``assert``
    statement, raising it survives ``python -O``.  Lint rule CHK002
    enforces that runtime invariants in ``src/`` use this instead of
    ``assert``.
    """


class SanitizerViolation(InvariantError):
    """A runtime sanitizer (tree or lock) observed an inconsistency."""
