"""Correctness tooling: runtime sanitizers, WAL auditing, and AST lint.

Three pillars (see ``docs/static_analysis.md``):

* :mod:`repro.check.invariants` -- :class:`TreeSanitizer` /
  :func:`verify_tree`: deep structural + flat-plan cross-validation,
  amortized for online use via ``DILI.sanitizer``.
* :mod:`repro.check.locks` -- :class:`LockSanitizer`: lock-order
  inversion and lock-discipline detection for ``ConcurrentDILI``.
* :mod:`repro.check.wal_audit` -- :class:`WalAuditor`: offline
  durability-directory framing audit.
* :mod:`repro.check.plan_audit` -- :class:`PlanAuditor`: offline
  plan-store audit (base CRCs, delta chains, staleness); ``repro
  audit DIR`` combines it with the WAL audit.
* :mod:`repro.check.lint` -- pattern rules CHK001-CHK009 over the
  repo's own source (``repro check lint ...``).
* :mod:`repro.check.dataflow` -- interprocedural dataflow rules
  CHK010-CHK013 (``repro check dataflow ...``; also part of the
  default ``repro check lint`` gate), sharing one parse per file with
  the pattern rules via :mod:`repro.check.parsing`.

Submodules import the core back (the sanitizers wrap live indexes), so
everything here is exported lazily; ``repro.check.errors`` stays
dependency-free for hot-path imports.
"""

from __future__ import annotations

from repro.check.errors import InvariantError, SanitizerViolation

_LAZY = {
    "TreeSanitizer": ("repro.check.invariants", "TreeSanitizer"),
    "verify_tree": ("repro.check.invariants", "verify_tree"),
    "verify_subtree": ("repro.check.invariants", "verify_subtree"),
    "verify_internal": ("repro.check.invariants", "verify_internal"),
    "LockSanitizer": ("repro.check.locks", "LockSanitizer"),
    "LockViolation": ("repro.check.locks", "LockViolation"),
    "WalAuditor": ("repro.check.wal_audit", "WalAuditor"),
    "AuditReport": ("repro.check.wal_audit", "AuditReport"),
    "audit_directory": ("repro.check.wal_audit", "audit_directory"),
    "PlanAuditor": ("repro.check.plan_audit", "PlanAuditor"),
    "PlanAuditReport": ("repro.check.plan_audit", "PlanAuditReport"),
    "audit_plans": ("repro.check.plan_audit", "audit_plans"),
    "LintFinding": ("repro.check.lint", "LintFinding"),
    "lint_paths": ("repro.check.lint", "lint_paths"),
    "RULES": ("repro.check.lint", "RULES"),
    "DATAFLOW_RULES": ("repro.check.dataflow", "DATAFLOW_RULES"),
    "analyze_paths": ("repro.check.dataflow", "analyze_paths"),
    "ParsedFile": ("repro.check.parsing", "ParsedFile"),
    "parse_paths": ("repro.check.parsing", "parse_paths"),
}

__all__ = ["InvariantError", "SanitizerViolation", *_LAZY]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
