"""Custom AST lint for the repro codebase (rules CHK001-CHK009).

Pure stdlib-``ast`` analysis -- no third-party linter frameworks.  Each
rule encodes an invariant of this codebase that a generic linter cannot
know:

* **CHK001** -- the flat plan's structure-of-arrays buffers may only be
  mutated by the sanctioned ``patch_*`` / ``recompile_*`` APIs (plus
  ``FlatPlan.__init__``).  Any other store, subscript-store, or mutating
  method call on a plan SoA attribute corrupts the read path silently.
* **CHK002** -- no bare ``assert`` for runtime invariants inside
  ``src/``: ``python -O`` strips them.  Raise
  :class:`repro.check.errors.InvariantError` instead.  Test, example and
  benchmark trees are exempt (pytest rewrites their asserts).
* **CHK003** -- no hardcoded cost-model cycle literals (the paper's
  theta/eta/mu values).  They must come from
  ``repro.simulate.latency`` so recalibration changes one file.
  ``latency.py`` itself and test trees are exempt.
* **CHK004** -- no ``==`` / ``!=`` against non-zero float literals in
  ``core/``.  Exact comparison against a computed float is almost
  always a bug; comparisons against literal ``0.0`` (exact-arithmetic
  guards) are allowed.
* **CHK005** -- traced probes must use a shared ``Tracer`` constant: a
  ``tracer`` parameter's default must be ``NULL_TRACER`` (never ``None``
  or a fresh instance), and ``NullTracer()`` / ``Tracer()`` may only be
  instantiated inside ``repro/simulate/tracer.py``.
* **CHK006** -- ``FaultInjector`` may only be constructed inside the
  durability module that defines it and the resilience fault registry
  (``FaultRegistry.durability()`` memoizes named injectors).  A stray
  injector elsewhere in ``src/`` means crash points can be armed that
  no registry knows about.  Test trees are exempt.
* **CHK007** -- untrusted-bytes discipline: ``pickle.load`` /
  ``pickle.loads``, ``np.memmap``, and raw ``mmap`` may only appear
  inside ``repro/durability`` and ``repro/planstore``, the two modules
  whose formats checksum every byte before trusting it.  Anywhere else
  they deserialize (or map) bytes nothing has verified.  Test,
  example and benchmark trees are exempt.
* **CHK008** -- copy-on-write plan discipline: the in-place
  ``patch_*`` / ``recompile_*`` FlatPlan mutators may only be invoked
  from inside ``repro/core/flat.py`` (the ``applied_*`` constructors
  delegate to them after deciding in-place vs copy-on-write).  A
  direct call anywhere else in ``src/`` would mutate a plan that may
  already be epoch-published -- frozen plans raise at runtime, but the
  lint catches the pattern before a schedule ever freezes one.  Test,
  example and benchmark trees are exempt.
* **CHK009** -- shard serving discipline: outside the sanctioned
  factory modules, ``src/`` code may not construct a ``DILI`` directly
  -- in particular the sharding layer (coordinator, router, chaos)
  must touch index state only through the durability/planstore APIs
  (``DurableDILI`` recovery + logged writes, ``MmapDILI`` serving).
  The factories: ``repro/core`` itself, durability recovery,
  resilience serving, the lock-check proxy, the bench harness, the
  CLI, and the sharding build modules ``worker.py`` / ``partition.py``.
  Test, example and benchmark trees are exempt.

The flow-sensitive rules CHK010-CHK013 live in
``repro.check.dataflow`` and run from the same parsed trees (see
``repro.check.parsing``).

Any finding can be locally waived with a pragma comment on (any line
of) the offending statement::

    assert fast_path  # repro-check: allow CHK002 -- type narrowing only

See ``docs/static_analysis.md`` for the full catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Iterable, Sequence

from repro.check.parsing import (
    ParsedFile,
    _PRAGMA_RE,
    iter_python_files,
    parse_paths,
    parse_source,
    pragma_lines as _pragma_lines,
)

RULES: dict[str, str] = {
    "CHK001": "flat-plan SoA buffers mutated outside patch_*/recompile_*",
    "CHK002": "bare assert used for a runtime invariant in src/",
    "CHK003": "hardcoded cost-model cycle literal",
    "CHK004": "float-literal equality comparison in core/",
    "CHK005": "traced probe without a shared Tracer constant",
    "CHK006": "FaultInjector constructed outside the fault registry",
    "CHK007": "untrusted-bytes primitive outside durability/planstore",
    "CHK008": "in-place FlatPlan mutator invoked outside repro/core/flat.py",
    "CHK009": "direct DILI construction outside the sanctioned factories",
}

# Files allowed to construct a DILI directly (CHK009), as
# (parent-directory, filename) pairs; repro/core is allowed wholesale.
_DILI_FACTORIES = frozenset(
    {
        ("durability", "recovery.py"),
        ("resilience", "serving.py"),
        ("check", "locks.py"),
        ("bench", "harness.py"),
        ("repro", "__main__.py"),
        ("sharding", "worker.py"),
        ("sharding", "partition.py"),
    }
)

# FlatPlan's structure-of-arrays attributes (the SoA-buffer subset of
# FlatPlan.__slots__; the version/frozen publication fields are not
# buffers and are governed by freeze(), not the patch APIs).
SOA_ATTRS = frozenset(
    {
        "kind", "slope", "intercept", "size", "base", "region",
        "slot_kind", "slot_ref", "pair_keys", "dense_keys", "values",
        "sorted_keys", "num_pairs", "depth",
    }
)

# Methods allowed to mutate the SoA buffers from inside FlatPlan.
_PLAN_MUTATOR_METHODS = frozenset(
    {
        "__init__",
        "patch_value", "patch_insert", "patch_insert_many",
        "patch_delete", "patch_delete_many",
        "recompile_subtree", "recompile_subtrees",
    }
)

# The in-place plan mutators themselves (CHK008): outside flat.py, plan
# maintenance must go through the applied_* copy-on-write constructors,
# which are safe on frozen (epoch-published) plans.
_INPLACE_PLAN_MUTATORS = frozenset(
    {
        "patch_value", "patch_insert", "patch_insert_many",
        "patch_delete", "patch_delete_many",
        "recompile_subtree", "recompile_subtrees",
    }
)

# In-place container mutators that corrupt an SoA buffer just as surely
# as a store does.
_MUTATING_CALLS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort",
     "reverse", "fill", "resize", "put"}
)

# The Section 7.1 calibration values (theta, eta, mu_L, mu_E, cache hit,
# branch).  Re-typing any of them as a literal is what CHK003 flags.
COST_LITERALS = frozenset({130.0, 25.0, 17.0, 5.0, 4.0, 2.0})

@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    waived: bool = False

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        """The stable machine-readable schema (``--format=json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
        }


def _call_name(func: ast.expr) -> str | None:
    """Trailing name of a call target (``foo`` or ``obj.foo``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_cost_literal(node: ast.expr) -> bool:
    # Only float literals: the calibration constants are written as
    # floats (130.0, 25.0, ...); integer 2s and 4s in index arithmetic
    # are not cost charges.
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is float
        and node.value in COST_LITERALS
    )


def _is_null_tracer_ref(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "NULL_TRACER"
    if isinstance(node, ast.Attribute):
        return node.attr == "NULL_TRACER"
    return False


class _FileContext:
    """Which rules apply to this file, from its path alone."""

    def __init__(self, path: str) -> None:
        parts = PurePath(path).parts
        name = parts[-1] if parts else path
        in_tests = any(p in ("tests", "test", "examples") for p in parts)
        in_benchmarks = "benchmarks" in parts
        self.check_asserts = not (in_tests or in_benchmarks)
        self.check_cost = not in_tests and name != "latency.py"
        self.check_float_eq = "core" in parts
        self.check_tracer = name != "tracer.py"
        # faultpoints.py defines FaultInjector; faults.py (the
        # resilience registry and its repro.faults alias) memoizes the
        # sanctioned instances.
        self.check_fault_ctor = not in_tests and name not in (
            "faultpoints.py", "faults.py",
        )
        # durability and planstore checksum bytes before trusting them;
        # everywhere else pickle.load / np.memmap / raw mmap would
        # deserialize unverified data.
        self.check_untrusted = not (in_tests or in_benchmarks) and not any(
            p in ("durability", "planstore") for p in parts
        )
        # flat.py's applied_* constructors are the sanctioned callers of
        # the in-place patch tiers (CHK008).
        self.check_cow = not (in_tests or in_benchmarks) and name != "flat.py"
        # Only the factory modules may construct a DILI directly; shard
        # workers and everything downstream of them must reach index
        # state through DurableDILI / MmapDILI (CHK009).
        parent = parts[-2] if len(parts) >= 2 else ""
        self.check_dili_ctor = (
            not (in_tests or in_benchmarks)
            and "core" not in parts
            and (parent, name) not in _DILI_FACTORIES
        )


class _Linter(ast.NodeVisitor):
    """Single-file rule engine; collects findings with pragma filtering."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.ctx = _FileContext(path)
        self.pragmas = _pragma_lines(source)
        self.findings: list[LintFinding] = []
        self.waived: list[LintFinding] = []
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        # Per-scope sets of local names bound to a flat plan.
        self._alias_stack: list[set[str]] = [set()]
        # Names bound directly to an untrusted-bytes primitive via
        # ``from pickle import load`` / ``from mmap import mmap`` /
        # ``from numpy import memmap`` (CHK007); collected up front so
        # call sites before a late import are still caught.
        self._untrusted_imports: set[str] = set()
        _FROM_IMPORTS = {
            "pickle": ("load", "loads"),
            "mmap": ("mmap",),
            "numpy": ("memmap",),
        }
        for n in ast.walk(tree):
            if isinstance(n, ast.ImportFrom) and n.module in _FROM_IMPORTS:
                for alias in n.names:
                    if alias.name in _FROM_IMPORTS[n.module]:
                        self._untrusted_imports.add(alias.asname or alias.name)
        self.visit(tree)

    # -- reporting ----------------------------------------------------

    def _report(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        span: tuple[int, int] | None = None,
    ) -> None:
        # ``span`` widens the pragma-matching window beyond the node
        # itself (e.g. a default-value finding honors a pragma anywhere
        # on the enclosing ``def``'s decorated signature).
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        if span is not None:
            first, last = min(first, span[0]), max(last, span[1])
        finding = LintFinding(
            self.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0), rule, message,
        )
        for line in range(first, last + 1):
            if rule in self.pragmas.get(line, ()):  # waived
                self.waived.append(
                    LintFinding(finding.path, finding.line, finding.col,
                                finding.rule, finding.message, waived=True)
                )
                return
        self.findings.append(finding)

    # -- scope bookkeeping --------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        self._check_tracer_defaults(node)
        self._func_stack.append(node.name)
        self._alias_stack.append(set())
        self.generic_visit(node)
        self._alias_stack.pop()
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- CHK002: bare asserts -----------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        if self.ctx.check_asserts:
            self._report(
                node, "CHK002",
                "bare assert is stripped under python -O; raise "
                "repro.check.errors.InvariantError instead",
            )
        self.generic_visit(node)

    # -- CHK004: float equality ---------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.ctx.check_float_eq:
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if (
                        isinstance(side, ast.Constant)
                        and type(side.value) is float
                        and side.value != 0.0
                    ):
                        self._report(
                            node, "CHK004",
                            f"exact comparison against float literal "
                            f"{side.value!r}; use a tolerance (or a pragma "
                            f"if bit-exactness is intended)",
                        )
                        break
        self.generic_visit(node)

    # -- calls: CHK003 cost literals, CHK005 tracer instantiation,
    #    CHK001 mutating calls ----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if self.ctx.check_cost:
            if name == "compute":
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if _is_cost_literal(sub):
                            self._report(
                                node, "CHK003",
                                f"cycle literal {sub.value!r} in a "
                                f"tracer.compute() charge; use "
                                f"repro.simulate.latency.DEFAULT_CYCLES",
                            )
                            break
            elif name == "CyclesPerOp":
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    if _is_cost_literal(arg):
                        self._report(
                            node, "CHK003",
                            f"CyclesPerOp re-types default {arg.value!r}; "
                            f"use dataclasses.replace(DEFAULT_CYCLES, ...)",
                        )
                        break
            for kw in node.keywords:
                if kw.arg == "mu_e" and _is_cost_literal(kw.value):
                    self._report(
                        node, "CHK003",
                        f"cycle literal {kw.value.value!r} passed as mu_e; "
                        f"use DEFAULT_CYCLES.exp_search_step",
                    )
        if self.ctx.check_tracer and name in ("NullTracer", "Tracer"):
            self._report(
                node, "CHK005",
                f"{name}() instantiated outside repro/simulate/tracer.py; "
                f"use the shared NULL_TRACER constant",
            )
        if self.ctx.check_fault_ctor and name == "FaultInjector":
            self._report(
                node, "CHK006",
                "FaultInjector() constructed outside the fault registry; "
                "use repro.faults.FaultRegistry.durability() (or "
                "durability's NULL_FAULTS) so armed crash points stay "
                "attributable",
            )
        if self.ctx.check_dili_ctor and name == "DILI":
            self._report(
                node, "CHK009",
                "direct DILI construction outside the sanctioned "
                "factories; serve index state through the durability/"
                "planstore APIs (DurableDILI recovery + logged writes, "
                "MmapDILI zero-copy reads)",
            )
        if self.ctx.check_untrusted:
            self._check_untrusted_bytes(node)
        if (
            self.ctx.check_cow
            and isinstance(node.func, ast.Attribute)
            and name in _INPLACE_PLAN_MUTATORS
        ):
            self._report(
                node, "CHK008",
                f"in-place plan mutator .{name}() outside repro/core/"
                f"flat.py; published plans are frozen -- use the "
                f"applied_* copy-on-write constructors",
            )
        if name in _MUTATING_CALLS and isinstance(node.func, ast.Attribute):
            self._check_soa_mutation(node, node.func.value, is_call=True)
        self.generic_visit(node)

    # -- CHK007: untrusted-bytes primitives ----------------------------

    def _check_untrusted_bytes(self, node: ast.Call) -> None:
        func = node.func
        flagged: str | None = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            recv, attr = func.value.id, func.attr
            if recv == "pickle" and attr in ("load", "loads"):
                flagged = f"pickle.{attr}"
            elif attr == "memmap" and recv in ("np", "numpy"):
                flagged = f"{recv}.memmap"
            elif recv == "mmap" and attr == "mmap":
                flagged = "mmap.mmap"
        elif isinstance(func, ast.Name) and func.id in self._untrusted_imports:
            flagged = func.id
        if flagged is not None:
            self._report(
                node, "CHK007",
                f"{flagged} outside repro/durability and repro/planstore "
                f"deserializes bytes nothing has checksummed; route the "
                f"read through those modules' verified formats",
            )

    # -- CHK005: tracer parameter defaults ----------------------------

    def _check_tracer_defaults(self, node) -> None:
        if not self.ctx.check_tracer:
            return
        a = node.args
        positional = [*a.posonlyargs, *a.args]
        pairs = list(zip(positional[len(positional) - len(a.defaults):],
                         a.defaults))
        pairs += [
            (arg, d)
            for arg, d in zip(a.kwonlyargs, a.kw_defaults)
            if d is not None
        ]
        # The offending "statement" is the decorated signature: a pragma
        # anywhere from the first decorator through the line before the
        # body waives, but a pragma inside the body does not.
        sig_first = min(
            [node.lineno, *(d.lineno for d in node.decorator_list)]
        )
        body_first = node.body[0].lineno if node.body else node.lineno
        sig_last = body_first if body_first == node.lineno else body_first - 1
        for arg, default in pairs:
            if arg.arg == "tracer" and not _is_null_tracer_ref(default):
                self._report(
                    default, "CHK005",
                    "tracer parameter must default to the shared "
                    "NULL_TRACER constant",
                    span=(sig_first, sig_last),
                )

    # -- CHK001: SoA mutation tracking --------------------------------

    def _is_plan_expr(self, node: ast.expr) -> bool:
        """Does this expression evaluate to a FlatPlan?"""
        if isinstance(node, ast.Name):
            return any(node.id in s for s in self._alias_stack)
        if isinstance(node, ast.Attribute):
            return node.attr == "_flat"
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            return name in ("compile_plan", "_plan")
        return False

    def _soa_attr_of(self, node: ast.expr) -> ast.Attribute | None:
        """``<plan>.<soa_attr>`` if that's what ``node`` is."""
        if (
            isinstance(node, ast.Attribute)
            and node.attr in SOA_ATTRS
            and self._is_plan_expr(node.value)
        ):
            return node
        return None

    def _in_sanctioned_plan_method(self) -> bool:
        return (
            bool(self._class_stack)
            and self._class_stack[-1] == "FlatPlan"
            and bool(self._func_stack)
            and self._func_stack[-1] in _PLAN_MUTATOR_METHODS
        )

    def _check_soa_mutation(
        self, stmt: ast.AST, target: ast.expr, *, is_call: bool = False
    ) -> None:
        # `self.<soa> = ...` inside FlatPlan methods.
        if (
            isinstance(target, ast.Attribute)
            and target.attr in SOA_ATTRS
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
            and self._class_stack[-1] == "FlatPlan"
        ):
            if not self._in_sanctioned_plan_method():
                verb = "mutated by" if is_call else "assigned in"
                self._report(
                    stmt, "CHK001",
                    f"FlatPlan SoA buffer '{target.attr}' {verb} "
                    f"'{self._func_stack[-1] if self._func_stack else '?'}'; "
                    f"only __init__/patch_*/recompile_* may write it",
                )
            return
        # `<plan expr>.<soa> = ...` anywhere else.
        attr = self._soa_attr_of(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = self._soa_attr_of(target.value)
        if attr is not None and not self._in_sanctioned_plan_method():
            self._report(
                stmt, "CHK001",
                f"flat-plan SoA buffer '{attr.attr}' mutated outside the "
                f"patch_*/recompile_* APIs",
            )

    def _note_aliases(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        if self._is_plan_expr(value):
            for t in targets:
                if isinstance(t, ast.Name):
                    self._alias_stack[-1].add(t.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_aliases(node.targets, node.value)
        for t in node.targets:
            self._check_soa_mutation(node, t)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_aliases([node.target], node.value)
        self._check_soa_mutation(node, node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_soa_mutation(node, node.target)
        self.generic_visit(node)


def lint_parsed(
    parsed: Iterable[ParsedFile], *, include_waived: bool = False
) -> list[LintFinding]:
    """Lint already-parsed files (the shared single-parse entry point)."""
    findings: list[LintFinding] = []
    for pf in parsed:
        if pf.tree is None:
            exc = pf.error
            findings.append(
                LintFinding(
                    pf.path,
                    (exc.lineno or 1) if exc else 1,
                    (exc.offset or 0) if exc else 0,
                    "PARSE",
                    f"syntax error: {exc.msg if exc else 'unparseable'}",
                )
            )
            continue
        linter = _Linter(pf.path, pf.source, pf.tree)
        findings.extend(linter.findings)
        if include_waived:
            findings.extend(linter.waived)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; returns findings (possibly empty)."""
    return lint_parsed([parse_source(source, path)])


def lint_file(path: str | Path) -> list[LintFinding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    """Lint every .py file under ``paths``; findings in stable order."""
    return lint_parsed(parse_paths(paths))
