"""Runtime tree sanitizer: structural invariants + plan cross-validation.

:func:`verify_tree` is the deep check -- it walks the whole object tree
and re-verifies every invariant the paper's construction relies on:

* internal nodes carry exactly the equal-width model of Eq. 1 for their
  ``[lb, ub)`` range and fanout (``slope = fo/(ub-lb)``,
  ``intercept = -slope*lb``);
* every stored pair sits at exactly its model-predicted slot, and every
  key under a nested leaf predicts the slot that nested leaf occupies
  in its parent (checked at the key-range endpoints; slot prediction is
  monotone in the key);
* dense (DILI-LO) leaves keep parallel, strictly sorted arrays;
* per-leaf and tree-wide pair counts agree with an actual walk, and
  in-order iteration yields strictly increasing keys;
* a compiled :class:`~repro.core.flat.FlatPlan`, if present, answers
  every key exactly like the object tree and carries the same sorted
  key table; a cached :class:`~repro.core.flat.InternalRouter` routes
  to the tree's actual top-level leaves.

:class:`TreeSanitizer` makes that affordable online: cheap per-write
coherence checks always run, and the O(n) deep verification is
*amortized* -- it reruns once the number of mutated keys since the last
deep check reaches the current tree size, bounding total sanitizer work
at a constant factor of the work the index itself did.
"""

from __future__ import annotations

import math

import numpy as np

from repro.check.errors import SanitizerViolation
from repro.core.linear_model import LinearModel
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode


def _fail(message: str) -> None:
    raise SanitizerViolation(message)


def _check_internal(node: InternalNode) -> None:
    fanout = len(node.children)
    if fanout < 1:
        _fail(f"internal node [{node.lb}, {node.ub}) has no children")
    if not node.ub > node.lb:
        _fail(f"internal node with empty range [{node.lb}, {node.ub})")
    model = LinearModel.from_range(node.lb, node.ub, fanout)
    if node.slope != model.slope or node.intercept != model.intercept:
        _fail(
            f"internal node [{node.lb}, {node.ub}) fo={fanout} carries "
            f"model ({node.slope}, {node.intercept}), equal-width model "
            f"is ({model.slope}, {model.intercept})"
        )
    for i, child in enumerate(node.children):
        if child is None:
            _fail(f"internal node [{node.lb}, {node.ub}) child {i} is None")


def _check_dense(node: DenseLeafNode) -> int:
    if len(node.keys) != len(node.values):
        _fail(
            f"dense leaf [{node.lb}, {node.ub}): {len(node.keys)} keys vs "
            f"{len(node.values)} values"
        )
    if len(node.keys) > 1 and not bool(np.all(np.diff(node.keys) > 0)):
        _fail(f"dense leaf [{node.lb}, {node.ub}) keys not strictly sorted")
    return len(node.keys)


def _leaf_key_span(leaf: LeafNode) -> tuple[float, float] | None:
    """(min, max) key under a leaf, or None when empty."""
    lo = math.inf
    hi = -math.inf
    for key, _ in leaf.iter_pairs():
        lo = min(lo, key)
        hi = max(hi, key)
    return None if lo is math.inf else (lo, hi)


def _check_leaf(leaf: LeafNode) -> int:
    if len(leaf.slots) < 1:
        _fail(f"leaf [{leaf.lb}, {leaf.ub}) has an empty slot array")
    if leaf.slope < 0:
        _fail(f"leaf [{leaf.lb}, {leaf.ub}) model slope {leaf.slope} < 0")
    count = 0
    for i, entry in enumerate(leaf.slots):
        if entry is None:
            continue
        if type(entry) is tuple:
            predicted = leaf.predict_slot(entry[0])
            if predicted != i:
                _fail(
                    f"pair {entry[0]} stored at slot {i}, model predicts "
                    f"slot {predicted}"
                )
            count += 1
        else:
            count += _check_leaf(entry)
            span = _leaf_key_span(entry)
            if span is None:
                _fail(f"empty nested leaf left in slot {i}")
            else:
                # predict_slot is monotone in the key, so the endpoints
                # bracket every key under the nested leaf.
                for key in span:
                    predicted = leaf.predict_slot(key)
                    if predicted != i:
                        _fail(
                            f"nested leaf in slot {i} covers key {key}, "
                            f"which predicts slot {predicted}"
                        )
    if count != leaf.num_pairs:
        _fail(
            f"leaf [{leaf.lb}, {leaf.ub}) pair count: walked {count}, "
            f"tracked {leaf.num_pairs}"
        )
    return count


def _check_node(node) -> int:
    if type(node) is InternalNode:
        _check_internal(node)
        return sum(_check_node(c) for c in node.children)
    if type(node) is DenseLeafNode:
        return _check_dense(node)
    return _check_leaf(node)


def _top_leaves(node, out: list) -> None:
    if type(node) is InternalNode:
        for child in node.children:
            _top_leaves(child, out)
    else:
        out.append(node)


def _values_match(a, b) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


def _check_plan(index, keys: np.ndarray, values: list) -> None:
    plan = index._flat
    if plan is None:
        return
    plan.self_check()  # SoA cross-reference integrity (flat.py hook)
    if not np.array_equal(plan.sorted_keys, keys):
        _fail(
            f"plan sorted-key table diverged from the tree "
            f"({len(plan.sorted_keys)} plan keys vs {len(keys)} tree keys)"
        )
    if len(keys):
        got = plan.get_batch(keys)
        for i, (expect, actual) in enumerate(zip(values, got)):
            if not _values_match(expect, actual):
                _fail(
                    f"plan lookup diverged from the tree at key "
                    f"{keys[i]!r}: tree holds {expect!r}, plan answers "
                    f"{actual!r}"
                )


def _check_router(index) -> None:
    router = index._router
    if router is None or index.root is None:
        return
    tops: list = []
    _top_leaves(index.root, tops)
    if len(router.leaves) != len(tops):
        _fail(
            f"router caches {len(router.leaves)} top-level leaves, tree "
            f"has {len(tops)}"
        )
    for i, (cached, live) in enumerate(zip(router.leaves, tops)):
        if cached is not live:
            _fail(f"router leaf {i} is not the tree's top-level leaf {i}")


def verify_subtree(node) -> int:
    """Deep-verify one subtree (any node kind); returns its pair count.

    The scoped form of :func:`verify_tree` used by the online repair
    engine (:mod:`repro.resilience.repair`) to re-check just a
    quarantined subtree after rebuilding it.  Raises
    :class:`SanitizerViolation` on the first broken invariant.
    """
    return _check_node(node)


def verify_internal(node: InternalNode) -> None:
    """Verify one internal node's Eq. 1 model and child array.

    Raises :class:`SanitizerViolation` when the stored model is not
    exactly the equal-width model of its ``[lb, ub)`` range and fanout
    -- the check that makes linear-model poisoning detectable.
    """
    _check_internal(node)


def verify_tree(index, *, check_plan: bool = True,
                check_router: bool = True) -> None:
    """Deep-verify ``index``; raises :class:`SanitizerViolation` on damage.

    ``index`` is a :class:`repro.core.dili.DILI`.  O(n) in keys; see
    :class:`TreeSanitizer` for the amortized online form.
    """
    if index.root is None:
        if index._count != 0:
            _fail(f"empty tree with tracked count {index._count}")
        return
    total = _check_node(index.root)
    if total != index._count:
        _fail(f"pair count mismatch: walked {total}, tracked {index._count}")
    keys = np.empty(total, dtype=np.float64)
    values: list = [None] * total
    last = -math.inf
    for i, (key, value) in enumerate(index.items()):
        if key <= last:
            _fail(f"iteration order broken at key {key}")
        last = key
        keys[i] = key
        values[i] = value
    if check_plan:
        _check_plan(index, keys, values)
    if check_router:
        _check_router(index)


class TreeSanitizer:
    """Online invariant checker attached to ``DILI.sanitizer``.

    Every mutating operation reports the keys it touched via
    :meth:`after_write`.  The sanitizer then

    1. cheaply cross-checks each touched key between the object tree
       and the compiled flat plan (when one is live), and
    2. counts touched keys and reruns :func:`verify_tree` once the
       tally reaches ``amortize`` times the current tree size (at least
       ``min_interval`` keys), so deep-verification work stays within a
       constant factor of the index's own work.

    ``full_every`` forces a deep verify every N calls instead (e.g.
    ``full_every=1`` in small unit tests); the amortized policy still
    applies when it is None.  The instance is intentionally
    picklable-free state: ``DILI.__getstate__`` drops it like the other
    derived fields.
    """

    def __init__(
        self,
        *,
        amortize: float = 1.0,
        min_interval: int = 256,
        full_every: int | None = None,
    ) -> None:
        if amortize <= 0:
            raise ValueError("amortize must be positive")
        self.amortize = amortize
        self.min_interval = min_interval
        self.full_every = full_every
        self.checks = 0
        self.full_checks = 0
        self._pending = 0
        self._calls = 0

    # -- hook entry points (called by repro.core.dili) -----------------

    def after_write(self, index, keys) -> None:
        """Validate after a mutation that touched ``keys``."""
        self.checks += 1
        self._calls += 1
        if index._count < 0:
            _fail(f"tree count went negative: {index._count}")
        self._spot_check(index, keys)
        self._pending += max(1, len(keys))
        threshold = max(self.min_interval, self.amortize * index._count)
        due = self._pending >= threshold
        if self.full_every is not None:
            due = due or (self._calls % self.full_every == 0)
        if due:
            self.verify(index)

    def after_bulk(self, index) -> None:
        """A bulk load replaced the whole tree: deep-verify it now."""
        self.checks += 1
        self.verify(index)

    def verify(self, index) -> None:
        """Deep verification (:func:`verify_tree`), resetting the tally."""
        self.full_checks += 1
        self._pending = 0
        verify_tree(index)

    # -- cheap per-write checks ---------------------------------------

    def _spot_check(self, index, keys) -> None:
        """Tree/plan answer coherence for just the touched keys."""
        plan = index._flat
        if plan is None or len(keys) == 0:
            return
        arr = np.asarray(keys, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        from_plan = plan.get_batch(arr)
        for i, key in enumerate(arr.tolist()):
            expect = index.get(key)
            if not _values_match(expect, from_plan[i]):
                _fail(
                    f"after write, plan diverged from tree at key {key!r}: "
                    f"tree holds {expect!r}, plan answers {from_plan[i]!r}"
                )
