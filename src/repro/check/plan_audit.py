"""Offline plan-store auditor: base files, delta chains, staleness.

Sibling of :class:`repro.check.wal_audit.WalAuditor` for the ``plans/``
subdirectory: verifies every artifact the serving ladder would consult,
*eagerly* (full buffer CRCs, full delta payload CRCs -- the offline
auditor pays the O(n) read the O(1) open defers) and without building a
:class:`~repro.planstore.store.PlanStore`:

* base files: framed-header structure via ``read_plan_header``, then
  every buffer's bytes against its recorded CRC32;
* delta files: full verification via ``read_delta_file``, plus chain
  discipline -- the base generation must exist, sequence numbers must
  be consecutive from 1, chain LSNs must not regress;
* staleness: a generation whose effective LSN (base + verified chain)
  predates the snapshot's ``last_seqno`` can never be brought current;
* quarantined artifacts are reported (they are evidence of past
  damage), never touched.

Every plan finding is *recoverable* by construction: the ladder falls
back past any damaged generation, and rung 3 rebuilds from
snapshot + WAL -- whose own (possibly unrecoverable) problems are
:class:`WalAuditor`'s to report.  ``repro audit DIR`` combines both.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.check.wal_audit import AuditFinding
from repro.durability.recovery import SNAPSHOT_NAME
from repro.durability.snapshot import read_snapshot_header
from repro.planstore.format import (
    PlanStoreError,
    read_delta_file,
    read_plan_header,
)
from repro.planstore.serve import PlanDirectory


@dataclass(frozen=True)
class PlanAuditReport:
    """Outcome of :meth:`PlanAuditor.audit`.

    Attributes:
        directory: The audited ``plans/`` directory.
        findings: Every problem found (:class:`AuditFinding`).
        generations: Base generations present (quarantined excluded).
        verified_generations: Generations whose base and full chain
            verified clean.
        deltas: Delta files examined.
        quarantined: Quarantined artifacts present.
    """

    directory: str
    findings: list
    generations: int
    verified_generations: int
    deltas: int
    quarantined: int

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def damaged(self) -> bool:
        return any(not f.recoverable for f in self.findings)


class PlanAuditor:
    """Audit a state directory's ``plans/`` subdirectory.

    Args:
        dirpath: The *state* directory (the one holding
            ``snapshot.dili`` / ``wal.log`` / ``plans/``), matching
            :class:`WalAuditor`'s convention.
    """

    def __init__(self, dirpath) -> None:
        self.dirpath = os.fspath(dirpath)
        self.plans = PlanDirectory.for_state_dir(self.dirpath)

    def audit(self) -> PlanAuditReport:
        findings: list[AuditFinding] = []
        snapshot_seqno = self._snapshot_seqno()
        generations = self.plans.generations()
        verified = 0
        deltas = 0
        for generation in generations:
            gen_clean, gen_deltas = self._audit_generation(
                generation, snapshot_seqno, findings
            )
            deltas += gen_deltas
            if gen_clean:
                verified += 1
        quarantined = self.plans.quarantined()
        if quarantined:
            findings.append(
                AuditFinding(
                    "plan-quarantined",
                    f"{len(quarantined)} quarantined artifact(s) present "
                    f"(evidence of past damage): "
                    + ", ".join(
                        os.path.basename(p) for p in quarantined[:5]
                    )
                    + ("..." if len(quarantined) > 5 else ""),
                    recoverable=True,
                )
            )
        return PlanAuditReport(
            directory=self.plans.dirpath,
            findings=findings,
            generations=len(generations),
            verified_generations=verified,
            deltas=deltas,
            quarantined=len(quarantined),
        )

    # ------------------------------------------------------------------

    def _snapshot_seqno(self) -> int:
        path = os.path.join(self.dirpath, SNAPSHOT_NAME)
        if not os.path.exists(path):
            return 0
        try:
            _, last_seqno, _, _ = read_snapshot_header(path)
        except ValueError:
            return 0  # WalAuditor reports the snapshot damage itself
        return last_seqno

    def _audit_generation(
        self, generation: int, snapshot_seqno: int, findings: list
    ) -> tuple[bool, int]:
        """Audit one base + chain; returns ``(clean, deltas_seen)``."""
        base = self.plans.base_path(generation)
        clean = True
        try:
            header = read_plan_header(base)
        except PlanStoreError as exc:
            findings.append(
                AuditFinding("plan-header", str(exc), recoverable=True)
            )
            return False, 0
        clean &= self._audit_buffers(base, header, findings)
        lsn = int(header["wal_lsn"])
        next_seq = 1
        chain = self.plans.delta_seqs(generation)
        for seq, path in chain:
            name = os.path.basename(path)
            if seq != next_seq:
                findings.append(
                    AuditFinding(
                        "delta-chain-gap",
                        f"generation {generation}: expected delta seq "
                        f"{next_seq}, found {name}",
                        recoverable=True,
                    )
                )
                clean = False
                break
            try:
                delta = read_delta_file(path)
            except PlanStoreError as exc:
                findings.append(
                    AuditFinding("delta-corrupt", str(exc), recoverable=True)
                )
                clean = False
                break
            if delta["base_generation"] != generation:
                findings.append(
                    AuditFinding(
                        "delta-orphan",
                        f"{name} targets generation "
                        f"{delta['base_generation']}, not {generation}",
                        recoverable=True,
                    )
                )
                clean = False
                break
            if delta["wal_lsn"] < lsn:
                findings.append(
                    AuditFinding(
                        "delta-lsn-regress",
                        f"{name} carries LSN {delta['wal_lsn']} behind "
                        f"the chain's {lsn}",
                        recoverable=True,
                    )
                )
                clean = False
                break
            lsn = int(delta["wal_lsn"])
            next_seq += 1
        if lsn < snapshot_seqno:
            findings.append(
                AuditFinding(
                    "plan-stale",
                    f"generation {generation} chain LSN {lsn} predates "
                    f"snapshot seqno {snapshot_seqno}; the gap was "
                    f"truncated from the WAL",
                    recoverable=True,
                )
            )
            clean = False
        return clean, len(chain)

    def _audit_buffers(
        self, base: str, header: dict, findings: list
    ) -> bool:
        """Eagerly check every buffer's CRC32; returns cleanliness."""
        clean = True
        data_start = header["data_start"]
        with open(base, "rb") as fh:
            for desc in header["buffers"]:
                fh.seek(data_start + desc["offset"])
                checksum = zlib.crc32(fh.read(desc["nbytes"]))
                if checksum != desc["crc32"]:
                    findings.append(
                        AuditFinding(
                            "plan-buffer-crc",
                            f"{os.path.basename(base)}: buffer "
                            f"{desc['name']!r} checksum {checksum:#010x} "
                            f"!= recorded {desc['crc32']:#010x}",
                            recoverable=True,
                        )
                    )
                    clean = False
        return clean


def audit_plans(dirpath) -> PlanAuditReport:
    """Convenience wrapper: ``PlanAuditor(dirpath).audit()``."""
    return PlanAuditor(dirpath).audit()
