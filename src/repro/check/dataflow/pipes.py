"""CHK014 -- no untimed pipe receives outside the supervision wrappers.

PR 8's coordinator called ``Connection.recv()`` / ``Connection.poll``
wherever it needed a frame, each site with its own ad-hoc timeout (or
none), which is exactly how the 120 s-per-retry tail latency happened:
per-call timeouts multiply under retries, and one forgotten timeout is
an unbounded wait on a hung worker.  The supervision layer fixes this
by construction -- every pipe wait flows through
:func:`~repro.sharding.supervision.poll_frame` /
:func:`~repro.sharding.supervision.recv_frame` /
:func:`~repro.sharding.supervision.drain_stale`, each sliced from one
per-request :class:`~repro.sharding.supervision.Deadline` -- and this
rule keeps it fixed: a raw ``.recv()`` or ``.poll(...)`` on a pipe
connection anywhere outside the sanctioned wrapper module is a
finding.

Receiver detection is the same name heuristic the rest of the engine
uses (documented-conservative): a call whose receiver is ``conn`` or
``*.conn`` is a pipe receive.  The one legitimate blocking receive --
the worker's request loop, whose whole job is to wait for its
coordinator while a heartbeat thread vouches for liveness -- carries
an explicit pragma waiver, so the exception is visible in the diff and
counted by the waiver audit.
"""

from __future__ import annotations

from .facts import FactsStore
from .model import dotted_name
from .solver import TaintFinding

RULE = "CHK014"

#: The only module allowed to touch the raw pipe-receive primitives:
#: its wrappers take the caller's deadline slice and are the choke
#: point the whole bounded-wait argument rests on.
SANCTIONED = "sharding/supervision.py"

#: Methods that block (or busy-wait) on a pipe connection.
_RECEIVE_METHODS = frozenset({"recv", "poll"})


def _is_pipe_receiver(receiver) -> bool:
    name = dotted_name(receiver)
    return name is not None and (name == "conn" or name.endswith(".conn"))


def run(facts: FactsStore) -> list[TaintFinding]:
    findings: list[TaintFinding] = []
    for fi in facts.model.functions:
        path = fi.path.replace("\\", "/")
        if path.endswith(SANCTIONED):
            continue
        for site in fi.calls:
            if (
                site.name in _RECEIVE_METHODS
                and site.receiver is not None
                and _is_pipe_receiver(site.receiver)
            ):
                findings.append(
                    TaintFinding(
                        fi.path, site.node, RULE,
                        f"raw pipe {site.name}() outside the sanctioned "
                        f"supervision wrappers; route the wait through "
                        f"poll_frame/recv_frame/drain_stale so it draws "
                        f"from the request deadline",
                    )
                )
    return findings
