"""Worklist-based forward dataflow / taint solver.

The solver is a generic interprocedural engine; a rule instantiates it
with a :class:`TaintConfig` (what creates taint, what cleans it, what
must never receive it).  Facts it maintains to a fixpoint:

* **function summaries** -- for every function, the set of taint
  origins its return value may carry, including symbolic *parameter
  markers* ("returns whatever flows in through parameter *i*"), so
  source -> helper -> sink chains across any number of calls resolve;
* **parameter taint** -- origins observed flowing into each parameter
  across all call sites;
* **class-attribute taint** -- origins ever stored into
  ``self.<attr>`` (or ``instance.<attr>`` where the instance's class
  is known from a constructor call), read back at every method entry.

Within one function the walk is flow-sensitive in statement order: a
call to an allowlisted *sanitizer* clears the taint of its arguments
-- and, for argument-less method sanitizers like
``self._ensure_verified()``, marks the whole receiver state clean for
the rest of the body (the verify-then-serve idiom).  Branches are
walked sequentially (path-insensitive): taint survives an ``if``, so a
flow is only considered clean when a sanitizer dominates it textually.

Origins are tuples: ``("src", label)`` for concrete sources and
``("param", qualname, i)`` for symbolic parameter flow.  A sink only
reports when a concrete ``("src", ...)`` origin reaches it -- a flow
that depends solely on a caller's parameter is the *caller's* flow and
is accounted for there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from .model import CallSite, FunctionInfo, ProjectModel, call_name

Origin = tuple  # ("src", label) | ("param", qualname, index)

_MAX_ROUNDS = 40


@dataclass
class TaintConfig:
    """One rule's instantiation of the solver."""

    rule: str
    #: call-expression source: return an origin label or None
    source_call: Callable[[ast.Call, FunctionInfo | None, str], str | None]
    #: sink: return a sink label or None (checked against arg taint,
    #: plus receiver taint when ``sink_on_receiver``)
    sink: Callable[[ast.Call, str | None, FunctionInfo | None, str], str | None]
    #: calls to these names clean their arguments / receiver state
    sanitizers: frozenset = frozenset()
    #: calls to these names return clean values even on tainted input
    purifiers: frozenset = frozenset()
    #: with-item source (e.g. ``with pub.pinned() as plan``)
    source_withitem: Callable[
        [ast.withitem, FunctionInfo | None, str], str | None
    ] | None = None
    #: calls to these names taint their first argument (side-effect
    #: sources, e.g. ``publish(plan)`` marks ``plan`` publishable)
    arg_taint_calls: frozenset = frozenset()
    sink_on_receiver: bool = True
    #: interprocedural scope: when set, only functions in these files
    #: are interpreted and propagated through -- everything else is
    #: opaque (taint passes through its calls unchanged).  Keeps a
    #: package-scoped rule's taint from riding shared core helpers
    #: (e.g. FlatPlan methods) into unrelated call sites.
    scope: Callable[[str], bool] | None = None
    message: Callable[[str, str], str] = (
        lambda sink, origin: f"{origin} reaches {sink} unverified"
    )


@dataclass
class TaintFinding:
    """A raw (pre-pragma) finding from one solver run."""

    path: str
    node: ast.AST
    rule: str
    message: str


@dataclass
class _Summary:
    ret: set = field(default_factory=set)


class TaintSolver:
    """Run one :class:`TaintConfig` over a project to a fixpoint."""

    def __init__(self, model: ProjectModel, config: TaintConfig) -> None:
        self.model = model
        self.config = config
        self.summaries: dict[str, _Summary] = {
            f.qualname: _Summary() for f in model.functions
        }
        self.param_taint: dict[tuple[str, str], set] = {}
        self.attr_taint: dict[tuple[str, str], set] = {}
        self._changed = False

    # -- driver -------------------------------------------------------

    def run(self) -> list[TaintFinding]:
        scope = self.config.scope
        active = [
            fi for fi in self.model.functions
            if scope is None or scope(fi.path)
        ]
        for _ in range(_MAX_ROUNDS):
            self._changed = False
            for fi in active:
                _Interp(self, fi).walk()
            if not self._changed:
                break
        findings: list[TaintFinding] = []
        for fi in active:
            findings.extend(_Interp(self, fi, findings=True).walk())
        return findings

    # -- fact mutation (monotone) -------------------------------------

    def add_param(self, qualname: str, param: str, origins: set) -> None:
        slot = self.param_taint.setdefault((qualname, param), set())
        if origins - slot:
            slot.update(origins)
            self._changed = True

    def add_attr(self, class_name: str, attr: str, origins: set) -> None:
        slot = self.attr_taint.setdefault((class_name, attr), set())
        if origins - slot:
            slot.update(origins)
            self._changed = True

    def add_return(self, qualname: str, origins: set) -> None:
        slot = self.summaries[qualname].ret
        if origins - slot:
            slot.update(origins)
            self._changed = True


class _Interp:
    """One flow-sensitive pass over one function body."""

    def __init__(
        self, solver: TaintSolver, fi: FunctionInfo, findings: bool = False
    ) -> None:
        self.s = solver
        self.fi = fi
        self.report = findings
        self.found: list[TaintFinding] = []
        self.env: dict[str, set] = {}
        self.instance_of: dict[str, str] = {}
        self.self_cleared = False
        for i, p in enumerate(fi.params):
            taint = {("param", fi.qualname, i)}
            taint |= solver.param_taint.get((fi.qualname, p), set())
            self.env[p] = taint
        if fi.params and fi.is_method and fi.params[0] in ("self", "cls"):
            # The receiver itself is never a taint carrier; its state
            # is modeled per-attribute (attr_taint).
            self.env[fi.params[0]] = set()

    def walk(self) -> list[TaintFinding]:
        self._block(self.fi.node.body)
        return self.found

    # -- statements ---------------------------------------------------

    def _block(self, stmts) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            t = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, t, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            t = self._eval(stmt.value) | self._read_target(stmt.target)
            self._assign(stmt.target, t, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.s.add_return(self.fi.qualname, self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                t = self._eval(item.context_expr)
                cfg = self.s.config
                if cfg.source_withitem is not None:
                    label = cfg.source_withitem(item, self.fi, self.fi.path)
                    if label is not None:
                        t = t | {("src", label)}
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, t, item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._eval(stmt.iter), stmt.iter)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _read_target(self, target: ast.expr) -> set:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, set())
        return self._eval(target) if isinstance(target, ast.expr) else set()

    def _assign(self, target: ast.expr, taint: set, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(taint)
            cls = self._constructed_class(value)
            if cls is not None:
                self.instance_of[target.id] = cls
            elif target.id in self.instance_of:
                del self.instance_of[target.id]
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._assign(el, taint, value)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint, value)
        elif isinstance(target, ast.Attribute):
            cls = self._receiver_class(target.value)
            if cls is not None:
                self.s.add_attr(cls, target.attr, set(taint))
        elif isinstance(target, ast.Subscript):
            # A tainted element taints the container.
            if isinstance(target.value, ast.Name):
                self.env.setdefault(target.value.id, set()).update(taint)
            elif isinstance(target.value, ast.Attribute):
                cls = self._receiver_class(target.value.value)
                if cls is not None:
                    self.s.add_attr(cls, target.value.attr, set(taint))

    def _constructed_class(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            if func.id == "cls" and self.fi.class_name:
                return self.fi.class_name
            if func.id in self.s.model.classes:
                return func.id
        if isinstance(func, ast.Attribute) and func.attr in self.s.model.classes:
            return func.attr
        return None

    def _receiver_class(self, receiver: ast.expr) -> str | None:
        """Class owning ``receiver.attr`` slots, when inferable."""
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls"):
                return self.fi.class_name
            return self.instance_of.get(receiver.id)
        return None

    # -- expressions --------------------------------------------------

    def _eval(self, node: ast.expr) -> set:
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, set()))
        if isinstance(node, ast.Attribute):
            cls = self._receiver_class(node.value)
            if cls is not None:
                if self.self_cleared and cls == self.fi.class_name:
                    return set()
                return set(self.s.attr_taint.get((cls, node.attr), set()))
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Lambda, ast.FunctionDef)):
            return set()
        out: set = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self._eval(child)
            elif isinstance(child, ast.comprehension):
                t = self._eval(child.iter)
                self._assign(child.target, t, child.iter)
                out |= t
        return out

    def _call(self, node: ast.Call) -> set:
        cfg = self.s.config
        name = call_name(node.func)
        receiver = (
            node.func.value if isinstance(node.func, ast.Attribute) else None
        )
        arg_taints = [self._eval(a) for a in node.args]
        kw_taints = {kw.arg: self._eval(kw.value) for kw in node.keywords}
        recv_taint = self._eval(receiver) if receiver is not None else set()

        # Side-effect sources: publish(plan) marks its argument.
        if name in cfg.arg_taint_calls:
            label = f"{name}() ({self.fi.path}:{node.lineno})"
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.env.setdefault(arg.id, set()).add(("src", label))

        # Sinks (reported only when a concrete source origin arrives).
        # A sink inside an allowlisted verifier is exempt: the flow
        # *into* the verifier is the sanctioned one (read_delta_file
        # CRC-checks the payload, then unpickles it).
        if self.report and self.fi.name not in cfg.sanitizers:
            sink_label = cfg.sink(node, name, self.fi, self.fi.path)
            if sink_label is not None:
                incoming: set = set()
                for t in arg_taints:
                    incoming |= t
                for t in kw_taints.values():
                    incoming |= t
                if cfg.sink_on_receiver:
                    incoming |= recv_taint
                src_origins = sorted(
                    o[1] for o in incoming if o and o[0] == "src"
                )
                if src_origins:
                    self.found.append(
                        TaintFinding(
                            self.fi.path, node, cfg.rule,
                            cfg.message(sink_label, src_origins[0]),
                        )
                    )

        # Sanitizers: the call's result is clean, its named arguments
        # are cleaned, and an argument-less method form blesses the
        # whole receiver state for the rest of the body.
        if name in cfg.sanitizers:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.env[arg.id] = set()
            if receiver is not None:
                if isinstance(receiver, ast.Name):
                    if receiver.id == "self":
                        self.self_cleared = True
                    else:
                        self.env[receiver.id] = set()
            elif not node.args:
                self.self_cleared = True
            return set()

        # Sources.
        label = cfg.source_call(node, self.fi, self.fi.path)
        if label is not None:
            return {("src", label)}

        if name in cfg.purifiers:
            return set()

        # Known callees: propagate into parameters, return summary.
        # Out-of-scope callees are opaque (handled by the pass-through
        # fallthrough below) -- their bodies are never interpreted, so
        # their summaries would read as spuriously clean.
        site = self._resolve(node)
        callees = [] if site is None else [
            c for c in site.callees
            if cfg.scope is None or cfg.scope(c.path)
        ]
        if callees:
            out: set = set()
            for callee in callees:
                offset = 1 if (
                    callee.is_method
                    and callee.params
                    and callee.params[0] in ("self", "cls")
                    and receiver is not None
                ) else 0
                for i, t in enumerate(arg_taints):
                    idx = i + offset
                    if idx < len(callee.params) and t:
                        self.s.add_param(
                            callee.qualname, callee.params[idx], t
                        )
                for kw, t in kw_taints.items():
                    if kw in (callee.params or ()) and t:
                        self.s.add_param(callee.qualname, kw, t)
                for origin in self.s.summaries[callee.qualname].ret:
                    if origin[0] == "param" and origin[1] == callee.qualname:
                        idx = origin[2] - offset
                        if 0 <= idx < len(arg_taints):
                            out |= arg_taints[idx]
                    else:
                        out.add(origin)
            return out

        # Unknown callee (numpy, stdlib, ...): taint passes through.
        out = recv_taint
        for t in arg_taints:
            out = out | t
        for t in kw_taints.values():
            out = out | t
        return out

    def _resolve(self, node: ast.Call) -> CallSite | None:
        for site in self.fi.calls:
            if site.node is node:
                return site
        return None
