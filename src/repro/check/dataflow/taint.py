"""CHK011 -- untrusted-bytes taint.

CHK007 bans the untrusted-bytes *primitives* outside durability and
planstore; this rule proves the *flows* inside them (and sharding, the
third byte-handling package): a value originating at an untrusted
source must pass through an allowlisted CRC/verify function before it
reaches a serving or deserialization sink.

**Sources** (only inside ``repro/durability``, ``repro/planstore``,
``repro/sharding``):

* ``np.memmap(...)`` / ``numpy.memmap(...)`` -- bytes mapped straight
  from disk; nothing has checksummed them yet (the plan store verifies
  lazily, after open);
* ``<pipe>.recv()`` -- frames from the coordinator/worker pipe; a
  half-dead peer can deliver garbage.

**Verifier allowlist** (sanitizers): ``verify``,
``_ensure_verified``, ``read_plan_header``, ``read_delta_file``,
``scan_wal``, ``read_snapshot``, ``_validate_request``,
``_validate_response``.  Calling one cleans its arguments; the
argument-less method form (``self._ensure_verified()``) blesses the
receiver's state for the rest of the body -- the verify-then-serve
idiom ``PlanStore`` is built on.

**Sinks** (same three packages): ``pickle.load(s)`` on a tainted
argument, the plan serving entry points (``lookup_batch``,
``gather_values``, ``replay_trace``, ``contains_batch``,
``count_range``/``count_range_batch``, ``get_batch``) on a tainted
receiver or argument, and the worker's ``dispatch`` on tainted
arguments.  Constructing a ``FlatPlan`` over memmap buffers is *not* a
sink -- the store's O(1)-open design builds the plan first and
verifies before the first read; the rule checks exactly that ordering.
"""

from __future__ import annotations

import ast

from .facts import FactsStore
from .model import FunctionInfo
from .solver import TaintConfig, TaintFinding, TaintSolver

RULE = "CHK011"

_PACKAGES = ("durability", "planstore", "sharding")

VERIFIERS = frozenset(
    {"verify", "_ensure_verified", "read_plan_header", "read_delta_file",
     "scan_wal", "read_snapshot", "_validate_request", "_validate_response"}
)

_SERVING_SINKS = frozenset(
    {"lookup_batch", "gather_values", "replay_trace", "contains_batch",
     "count_range", "count_range_batch", "get_batch", "dispatch"}
)


def in_scope(path: str) -> bool:
    return any(f"/{pkg}/" in path.replace("\\", "/") for pkg in _PACKAGES)


def _source_call(
    node: ast.Call, fi: FunctionInfo | None, path: str
) -> str | None:
    if not in_scope(path):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "memmap" and isinstance(func.value, ast.Name) and (
            func.value.id in ("np", "numpy")
        ):
            return f"np.memmap ({path}:{node.lineno})"
        if func.attr == "recv" and not node.args:
            return f"pipe recv ({path}:{node.lineno})"
    elif isinstance(func, ast.Name) and func.id == "memmap":
        return f"memmap ({path}:{node.lineno})"
    return None


def _sink(
    node: ast.Call, name: str | None, fi: FunctionInfo | None, path: str
) -> str | None:
    if not in_scope(path):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "pickle"
        and func.attr in ("load", "loads")
    ):
        return f"pickle.{func.attr}"
    if name in _SERVING_SINKS and isinstance(func, ast.Attribute):
        return f".{name}()"
    return None


def _message(sink: str, origin: str) -> str:
    return (
        f"untrusted bytes from {origin} reach {sink} without passing "
        f"an allowlisted verifier ({', '.join(sorted(VERIFIERS))})"
    )


def run(facts: FactsStore) -> list[TaintFinding]:
    config = TaintConfig(
        rule=RULE,
        source_call=_source_call,
        sink=_sink,
        sanitizers=VERIFIERS,
        scope=in_scope,
        message=_message,
    )
    return TaintSolver(facts.model, config).run()
