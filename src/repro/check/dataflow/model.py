"""Project model: functions, classes, and the module-level call graph.

The model is the substrate every flow-sensitive rule shares.  It is
built once per ``repro check`` invocation from the already-parsed
trees (:mod:`repro.check.parsing`) and indexes

* every function and method in the analyzed files
  (:class:`FunctionInfo`), with its parameter list and decorators;
* every class with its methods (:class:`ClassInfo`);
* every call site, resolved to candidate callees by a name-based
  heuristic (:class:`CallSite`) -- Python has no static types, so
  resolution is deliberately conservative: an attribute call
  ``x.meth(...)`` resolves to *every* method of that name (narrowed to
  the enclosing class for ``self.meth(...)``), and a bare-name call to
  the same-module function first, then any module-level function of
  that name.

Candidate over-approximation errs toward *propagating* facts, which
for the taint-style rules means false positives are possible but
missed flows are much harder; documented false positives are waived
with pragmas.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.check.parsing import ParsedFile

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def call_name(func: ast.expr) -> str | None:
    """Trailing name of a call target (``foo`` or ``obj.foo``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string when the expression is a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method in the analyzed project."""

    qualname: str                 # "path::Class.meth" / "path::func"
    name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None        # owning class, None for plain functions
    params: list[str]             # positional + kw-only names, incl. self
    required: int                 # params without defaults (incl. self)
    has_varargs: bool
    decorators: list[str] = field(default_factory=list)
    calls: list["CallSite"] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition and its methods."""

    name: str
    path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression, resolved to candidate callees."""

    caller: FunctionInfo | None   # None: module-level code
    node: ast.Call
    name: str | None              # trailing callee name
    receiver: ast.expr | None     # func.value for attribute calls
    callees: tuple[FunctionInfo, ...]


def _params_of(node) -> tuple[list[str], int, bool]:
    a = node.args
    names = [p.arg for p in (*a.posonlyargs, *a.args)]
    required = len(names) - len(a.defaults)
    kwonly = [p.arg for p in a.kwonlyargs]
    return names + kwonly, required, a.vararg is not None


class ProjectModel:
    """Whole-project function/class/call-graph index."""

    def __init__(self) -> None:
        self.files: list[ParsedFile] = []
        self.functions: list[FunctionInfo] = []
        self.by_qualname: dict[str, FunctionInfo] = {}
        #: bare name -> every function/method with that name
        self.by_name: dict[str, list[FunctionInfo]] = {}
        #: class name -> definitions (names are unique in practice but
        #: collisions across modules are preserved, not clobbered)
        self.classes: dict[str, list[ClassInfo]] = {}
        #: callee qualname -> call sites that may reach it
        self.callers: dict[str, list[CallSite]] = {}
        self._by_node: dict[int, FunctionInfo] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, parsed: list[ParsedFile]) -> "ProjectModel":
        model = cls()
        model.files = [p for p in parsed if p.tree is not None]
        for pf in model.files:
            model._collect_defs(pf)
        for pf in model.files:
            model._collect_calls(pf)
        return model

    def _add_function(
        self, pf: ParsedFile, node, class_name: str | None, prefix: str
    ) -> FunctionInfo:
        params, required, varargs = _params_of(node)
        qual = f"{pf.path}::{prefix}{node.name}"
        info = FunctionInfo(
            qualname=qual,
            name=node.name,
            path=pf.path,
            node=node,
            class_name=class_name,
            params=params,
            required=required,
            has_varargs=varargs,
            decorators=[
                d for d in (dotted_name(dec) or call_name(getattr(dec, "func", dec))
                            for dec in node.decorator_list)
                if d
            ],
        )
        self.functions.append(info)
        self.by_qualname[qual] = info
        self.by_name.setdefault(node.name, []).append(info)
        self._by_node[id(node)] = info
        return info

    def _collect_defs(self, pf: ParsedFile) -> None:
        for top in pf.tree.body:
            if isinstance(top, _FUNC_NODES):
                fi = self._add_function(pf, top, None, "")
                self._collect_nested(pf, top, fi)
            elif isinstance(top, ast.ClassDef):
                ci = ClassInfo(top.name, pf.path, top)
                self.classes.setdefault(top.name, []).append(ci)
                for item in top.body:
                    if isinstance(item, _FUNC_NODES):
                        mi = self._add_function(
                            pf, item, top.name, f"{top.name}."
                        )
                        ci.methods[item.name] = mi
                        self._collect_nested(pf, item, mi)

    def _collect_nested(self, pf: ParsedFile, node, parent: FunctionInfo) -> None:
        for child in ast.walk(node):
            if child is node or not isinstance(child, _FUNC_NODES):
                continue
            # Nested defs keep the lexical class context (closures over
            # self are rare; name-based resolution covers them anyway).
            self._add_function(
                pf, child, parent.class_name,
                f"{parent.qualname.split('::', 1)[1]}.<locals>.",
            )

    # -- call-site resolution -----------------------------------------

    def _collect_calls(self, pf: ParsedFile) -> None:
        model = self

        class _CallWalker(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: list[FunctionInfo | None] = [None]
                self.class_stack: list[str] = []

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()

            def _visit_func(self, node) -> None:
                fi = model._by_node.get(id(node))
                self.stack.append(fi)
                self.generic_visit(node)
                self.stack.pop()

            visit_FunctionDef = _visit_func
            visit_AsyncFunctionDef = _visit_func

            def visit_Call(self, node: ast.Call) -> None:
                caller = self.stack[-1]
                site = model.resolve_call(node, caller, pf.path)
                if caller is not None:
                    caller.calls.append(site)
                for callee in site.callees:
                    model.callers.setdefault(callee.qualname, []).append(site)
                self.generic_visit(node)

        _CallWalker().visit(pf.tree)

    def class_of(self, fi: FunctionInfo) -> ClassInfo | None:
        for ci in self.classes.get(fi.class_name or "", []):
            if ci.path == fi.path:
                return ci
        return None

    def constructor_of(self, name: str) -> tuple[ClassInfo, ...]:
        return tuple(self.classes.get(name, ()))

    def resolve_call(
        self, node: ast.Call, caller: FunctionInfo | None, path: str
    ) -> CallSite:
        func = node.func
        name = call_name(func)
        receiver = func.value if isinstance(func, ast.Attribute) else None
        callees: list[FunctionInfo] = []
        if isinstance(func, ast.Name):
            if func.id == "cls" and caller is not None and caller.class_name:
                for ci in self.classes.get(caller.class_name, []):
                    init = ci.methods.get("__init__")
                    if init:
                        callees.append(init)
            elif func.id in self.classes:
                for ci in self.classes[func.id]:
                    init = ci.methods.get("__init__")
                    if init:
                        callees.append(init)
            else:
                plain = [
                    f for f in self.by_name.get(func.id, [])
                    if f.class_name is None
                ]
                local = [f for f in plain if f.path == path]
                callees.extend(local or plain)
        elif isinstance(func, ast.Attribute):
            own: list[FunctionInfo] = []
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and caller is not None
                and caller.class_name
            ):
                for ci in self.classes.get(caller.class_name, []):
                    if func.attr in ci.methods:
                        own.append(ci.methods[func.attr])
            if own:
                callees.extend(own)
            else:
                callees.extend(
                    f for f in self.by_name.get(func.attr, [])
                    if f.class_name is not None
                )
        return CallSite(caller, node, name, receiver, tuple(callees))
