"""CHK010 -- lock-discipline inference.

For every class the rule infers, with no annotations:

1. **Lock attributes**: ``self.X = threading.Lock() / RLock()``
   assignments (stripe *lists* of locks are not single guards and are
   skipped -- the runtime LockSanitizer owns striped verification).
2. **Guarded attributes**: any ``self.<attr>`` written at least once
   inside a ``with self.X:`` block (or a block provably lock-held, see
   below) is considered guarded by ``X``.
3. **Held-on-entry methods** (the interprocedural part): a method with
   at least one in-project call site, *all* of whose ``self.m(...)``
   call sites execute with ``X`` held -- lexically inside
   ``with self.X:``, inside a ``with self.cm():`` where ``cm`` is a
   ``@contextmanager`` method whose every ``yield`` sits under
   ``with self.X:``, or inside another held-on-entry method -- is
   itself lock-held (greatest fixpoint: optimistic start, strip until
   stable).  A call site outside the class, or through anything but
   ``self``/``cls``, is never considered held.

A write (store, augmented store, subscript store, or mutating method
call) to a guarded attribute at a program point where the guard is not
provably held is a finding.  Constructors and pickling hooks
(``__init__``, ``__new__``, ``__getstate__``, ``__setstate__``,
``__del__``) are exempt on both sides: they run before/after the
object is shared.  Reads are deliberately not flagged -- lock-free
reads of published state are a documented pattern here
(``DILI.peek_plan``); the epoch/RCU rules (CHK012, LockSanitizer)
govern those.
"""

from __future__ import annotations

import ast

from .facts import FactsStore
from .model import ProjectModel, call_name
from .solver import TaintFinding

RULE = "CHK010"

_EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__getstate__", "__setstate__", "__del__",
     "__reduce__", "__copy__", "__deepcopy__", "__enter__", "__exit__"}
)

_LOCK_CTORS = frozenset({"Lock", "RLock"})


def _is_lock_ctor(value: ast.expr) -> bool:
    return (
        isinstance(value, ast.Call)
        and call_name(value.func) in _LOCK_CTORS
    )


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassLockAnalysis:
    """All lock facts for one class."""

    def __init__(self, facts: FactsStore, class_name: str, path: str) -> None:
        self.facts = facts
        self.model = facts.model
        model = self.model
        self.class_name = class_name
        self.path = path
        ci = next(
            c for c in model.classes[class_name] if c.path == path
        )
        self.methods = ci.methods
        self.locks = self._find_locks()
        #: contextmanager method name -> lock it confers on its body
        # (two-step: region discovery below consults self.confers, so
        # it starts empty -- a cm body is judged on direct `with` only)
        self.confers: dict[str, str] = {}
        if self.locks:
            self.confers = self._find_conferring_cms()
        #: (method, lock) -> held on entry (fixpoint)
        self.entry_held: dict[tuple[str, str], bool] = {}

    # -- lock attribute discovery -------------------------------------

    def _find_locks(self) -> set[str]:
        locks: set[str] = set()
        for mi in self.methods.values():
            for stmt in ast.walk(mi.node):
                if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
                    for target in stmt.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            locks.add(attr)
        return locks

    def _find_conferring_cms(self) -> dict[str, str]:
        confers: dict[str, str] = {}
        for name, mi in self.methods.items():
            if not any("contextmanager" in d for d in mi.decorators):
                continue
            yields = [
                n for n in ast.walk(mi.node)
                if isinstance(n, (ast.Yield, ast.YieldFrom))
            ]
            if not yields:
                continue
            for lock in self.locks:
                held_regions = self._regions_holding(mi.node, lock)
                if all(id(y) in held_regions for y in yields):
                    confers[name] = lock
                    break
        return confers

    # -- lexical lock regions -----------------------------------------

    def _with_lock_names(self, stmt: ast.With | ast.AsyncWith) -> set[str]:
        """Locks this ``with`` statement acquires."""
        held: set[str] = set()
        for item in stmt.items:
            expr = item.context_expr
            attr = _self_attr(expr)
            if attr in self.locks:
                held.add(attr)
            elif isinstance(expr, ast.Call):
                cm = call_name(expr.func)
                if (
                    cm in self.confers
                    and isinstance(expr.func, ast.Attribute)
                    and isinstance(expr.func.value, ast.Name)
                    and expr.func.value.id == "self"
                ):
                    held.add(self.confers[cm])
        return held

    def _regions_holding(self, func_node, lock: str) -> set[int]:
        """ids of every AST node lexically under ``with self.<lock>``."""
        out: set[int] = set()

        def walk(node: ast.AST, held: bool) -> None:
            if held:
                out.add(id(node))
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held or lock in self._with_lock_names(node)
                for item in node.items:
                    walk(item, held)
                for child in node.body:
                    walk(child, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func_node:
                    return  # nested defs run later, lock state unknown
            for child in ast.iter_child_nodes(node):
                walk(child, held)

        walk(func_node, False)
        return out

    # -- held-on-entry fixpoint ---------------------------------------

    def solve_entry_held(self) -> None:
        names = list(self.methods)
        held_regions: dict[tuple[str, str], set[int]] = {
            (m, lock): self._regions_holding(self.methods[m].node, lock)
            for m in names
            for lock in self.locks
        }
        self._held_regions = held_regions
        # Optimistic start: every method with >=1 self-call site is
        # held; strip any whose call sites aren't all covered.
        state = {
            (m, lock): bool(self.model.callers.get(self.methods[m].qualname))
            for m in names
            for lock in self.locks
        }
        for _ in range(len(names) + 2):
            changed = False
            for m in names:
                qual = self.methods[m].qualname
                sites = self.model.callers.get(qual, [])
                for lock in self.locks:
                    if not state[(m, lock)]:
                        continue
                    ok = bool(sites)
                    for site in sites:
                        caller = site.caller
                        if (
                            caller is None
                            or caller.class_name != self.class_name
                            or caller.path != self.path
                            or not isinstance(site.receiver, ast.Name)
                            or site.receiver.id not in ("self", "cls")
                        ):
                            ok = False
                            break
                        lexically = id(site.node) in held_regions.get(
                            (caller.name, lock), set()
                        )
                        entry = (
                            caller.name not in _EXEMPT_METHODS
                            and state.get((caller.name, lock), False)
                        )
                        if not (lexically or entry):
                            ok = False
                            break
                    if not ok:
                        state[(m, lock)] = False
                        changed = True
            if not changed:
                break
        self.entry_held = state

    # -- write collection + verdicts ----------------------------------

    def findings(self) -> list[TaintFinding]:
        self.solve_entry_held()
        # (attr, lock) guarded iff some non-exempt held write exists.
        writes: list[tuple[str, str, ast.AST, frozenset[str]]] = []
        for m, mi in self.methods.items():
            regions = {
                lock: self._held_regions[(m, lock)] for lock in self.locks
            }
            for sw in self.facts.defuse(mi).self_writes:
                held = frozenset(
                    lock for lock in self.locks
                    if id(sw.node) in regions[lock]
                    or self.entry_held.get((m, lock), False)
                )
                writes.append((m, sw.attr, sw.node, held))
        guarded: dict[str, set[str]] = {}
        for m, attr, node, held in writes:
            if m in _EXEMPT_METHODS:
                continue
            for lock in held:
                guarded.setdefault(attr, set()).add(lock)
        out: list[TaintFinding] = []
        for m, attr, node, held in writes:
            if m in _EXEMPT_METHODS or attr in self.locks:
                continue
            needed = guarded.get(attr, set())
            if needed and not (needed & held):
                lock = sorted(needed)[0]
                out.append(
                    TaintFinding(
                        self.path, node, RULE,
                        f"{self.class_name}.{m} writes "
                        f"'self.{attr}' without holding 'self.{lock}', "
                        f"which guards every other write to it; take the "
                        f"lock (or prove every call path holds it)",
                    )
                )
        return out


def run(facts: FactsStore) -> list[TaintFinding]:
    """CHK010 over every class that owns at least one lock attribute."""
    findings: list[TaintFinding] = []
    for name, infos in facts.model.classes.items():
        for ci in infos:
            analysis = _ClassLockAnalysis(facts, name, ci.path)
            if analysis.locks:
                findings.extend(analysis.findings())
    return findings
