"""CHK013 -- coordinator/worker pipe-protocol conformance.

The sharding layer speaks a tiny RPC over multiprocessing pipes:
requests are ``(req_id, method, args)``, responses ``(req_id, ok,
payload)``, and the worker's ``dispatch`` maps the ``method`` tag to a
public :class:`ShardWorker` method.  Nothing ties the two sides
together at runtime except string equality, so drift (a renamed verb,
a payload-shape change, a handler nobody can reach) ships silently.
This rule cross-checks the two sides statically, for every file under
``repro/sharding``:

* **worker side**: the handler set is every public method of the
  worker class (any class whose ``dispatch`` does ``getattr(self,
  method)``), plus the special tags the transport handles inline
  (``method == "stop"``-style comparisons), minus lifecycle methods
  called directly rather than dispatched (``close``);
* **coordinator side**: every string-literal tag passed to a send
  function (``call`` / ``send`` / ``_call`` / ``_send_retry`` /
  ``_recv_retry``), including tags that flow through one forwarding
  hop (a function whose ``method`` parameter it passes on, e.g.
  ``_write_batch("insert_batch", ...)``);
* **checks**: every sent tag has a handler; a literal payload tuple's
  arity fits the handler's signature; every handler verb is sent (or
  invoked directly) somewhere; request/response frames sent on a pipe
  (``conn.send(...)``) are literal 3-tuples.

Dynamic tags (a variable the analysis cannot resolve to a literal) are
not checked -- the seeded-violation tests pin the literal paths.
"""

from __future__ import annotations

import ast

from .facts import FactsStore
from .model import ClassInfo, FunctionInfo, ProjectModel, call_name
from .solver import TaintFinding

RULE = "CHK013"

SEND_FUNCS = frozenset({"call", "send", "_call", "_send_retry", "_recv_retry"})

#: lifecycle methods invoked directly on the worker object, never
#: dispatched by tag
_LIFECYCLE = frozenset({"close"})


def in_scope(path: str) -> bool:
    return "/sharding/" in path.replace("\\", "/")


def _is_dispatcher(method: FunctionInfo) -> bool:
    """Does this method do ``getattr(self, <var>)(...)``?"""
    for node in ast.walk(method.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        ):
            return True
    return False


def _worker_classes(model: ProjectModel) -> list[ClassInfo]:
    out = []
    for infos in model.classes.values():
        for ci in infos:
            if not in_scope(ci.path):
                continue
            dispatch = ci.methods.get("dispatch")
            if dispatch is not None and _is_dispatcher(dispatch):
                out.append(ci)
    return out


def _handler_signature(mi: FunctionInfo) -> tuple[int, float]:
    """(min, max) positional payload arity, ``self`` excluded."""
    lo = max(0, mi.required - 1)
    hi = float("inf") if mi.has_varargs else max(0, len(mi.params) - 1)
    return lo, hi


def _special_tags(model: ProjectModel, paths: set[str]) -> set[str]:
    """Tags handled inline by the transport (``method == "stop"``)."""
    tags: set[str] = set()
    for pf in model.files:
        if pf.path not in paths:
            continue
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            names = {
                o.id for o in operands if isinstance(o, ast.Name)
            }
            if "method" not in names:
                continue
            for o in operands:
                if isinstance(o, ast.Constant) and isinstance(o.value, str):
                    tags.add(o.value)
    return tags


def _forwarders(model: ProjectModel) -> dict[str, int]:
    """name -> index of its ``method`` param, for one-hop forwarders."""
    out: dict[str, int] = {}
    for fi in model.functions:
        if not in_scope(fi.path) or "method" not in fi.params:
            continue
        forwards = any(
            site.name in (SEND_FUNCS | {"dispatch"})
            and any(
                isinstance(a, ast.Name) and a.id == "method"
                for a in site.node.args
            )
            for site in fi.calls
        )
        if forwards:
            out[fi.name] = fi.params.index("method")
    return out


def _tag_of(site_node: ast.Call, method_pos: int | None) -> tuple[str, int] | None:
    """(tag, positional index) of the literal tag, if any."""
    if method_pos is not None:
        if method_pos < len(site_node.args):
            arg = site_node.args[method_pos]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value, method_pos
        for kw in site_node.keywords:
            if kw.arg == "method" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                return kw.value.value, len(site_node.args)
        return None
    for i, arg in enumerate(site_node.args):
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value, i
    return None


def _payload_tuple(site_node: ast.Call, tag_index: int) -> ast.Tuple | None:
    for arg in site_node.args[tag_index + 1:]:
        if isinstance(arg, ast.Tuple):
            return arg
    return None


def run(facts: FactsStore) -> list[TaintFinding]:
    model = facts.model
    workers = _worker_classes(model)
    if not workers:
        return []
    handlers: dict[str, FunctionInfo] = {}
    worker_paths: set[str] = set()
    for ci in workers:
        worker_paths.add(ci.path)
        for name, mi in ci.methods.items():
            if name.startswith("_") or name == "dispatch" or name in _LIFECYCLE:
                continue
            handlers[name] = mi
    specials = _special_tags(model, worker_paths)
    forwarders = _forwarders(model)

    findings: list[TaintFinding] = []
    sent_tags: set[str] = set()
    direct_calls: set[str] = set()

    for fi in model.functions:
        if not in_scope(fi.path):
            continue
        inside_worker = any(
            fi.class_name == ci.name and fi.path == ci.path for ci in workers
        )
        for site in fi.calls:
            name = site.name
            if name is None:
                continue
            if site.receiver is not None:
                direct_calls.add(name)
            is_sender = name in SEND_FUNCS or name in forwarders
            if not is_sender or inside_worker:
                # the worker's own conn.send(...) responses are checked
                # by the frame-shape pass below, not as tag sends
                continue
            offset = 0
            if name in forwarders:
                method_pos = forwarders[name]
                if site.receiver is not None and method_pos > 0:
                    offset = 1  # self consumed by the bound call
                got = _tag_of(site.node, method_pos - offset)
            else:
                got = _tag_of(site.node, None)
            if got is None:
                continue
            tag, tag_index = got
            sent_tags.add(tag)
            if tag not in handlers and tag not in specials:
                known = sorted(set(handlers) | specials)
                findings.append(
                    TaintFinding(
                        fi.path, site.node, RULE,
                        f"sent message tag {tag!r} has no worker handler; "
                        f"known verbs: {', '.join(known)}",
                    )
                )
                continue
            payload = _payload_tuple(site.node, tag_index)
            if payload is not None and tag in handlers:
                lo, hi = _handler_signature(handlers[tag])
                n = len(payload.elts)
                if not (lo <= n <= hi):
                    hi_txt = "*" if hi == float("inf") else int(hi)
                    findings.append(
                        TaintFinding(
                            fi.path, site.node, RULE,
                            f"message {tag!r} sent with {n} payload "
                            f"field(s) but the worker handler takes "
                            f"{lo}..{hi_txt}",
                        )
                    )

    for name, mi in sorted(handlers.items()):
        if name not in sent_tags and name not in direct_calls:
            findings.append(
                TaintFinding(
                    mi.path, mi.node, RULE,
                    f"worker handler {name!r} is never sent by any "
                    f"coordinator send site (and never called directly); "
                    f"dead protocol verbs drift silently -- remove it or "
                    f"wire up a sender",
                )
            )

    # Frame shape: anything sent on a raw pipe must be a 3-tuple.
    for fi in model.functions:
        if not in_scope(fi.path):
            continue
        for site in fi.calls:
            if (
                site.name == "send"
                and site.receiver is not None
                and call_name(site.receiver) == "conn"
                and len(site.node.args) == 1
                and isinstance(site.node.args[0], ast.Tuple)
                and len(site.node.args[0].elts) != 3
            ):
                n = len(site.node.args[0].elts)
                findings.append(
                    TaintFinding(
                        fi.path, site.node, RULE,
                        f"pipe frame is a {n}-tuple; the protocol is "
                        f"(req_id, method, args) / (req_id, ok, payload)",
                    )
                )
    return findings
