"""CHK012 -- frozen-plan escape analysis (interprocedural CHK008).

CHK008 bans the in-place ``patch_*`` / ``recompile_*`` spellings
outside ``flat.py`` by location.  This rule chases the *values*: a
``FlatPlan`` that can be epoch-published -- obtained from
``peek_plan()``, ``PlanPublisher.load()``, a ``with ...pinned() as
plan`` block, passed to ``publish(...)``, or returned by
``freeze()`` -- must never flow, through any number of assignments,
returns, or parameters, into a context that calls an in-place mutator
on it.  Published plans are frozen; the runtime guard raises, but only
on schedules that actually froze the plan first -- the escape analysis
catches the pattern on every schedule.

``flat.py`` itself is exempt on the sink side (the ``applied_*``
constructors delegate to the in-place tiers on private clones), same
as CHK008.
"""

from __future__ import annotations

import ast

from .facts import FactsStore
from .model import FunctionInfo
from .solver import TaintConfig, TaintFinding, TaintSolver

RULE = "CHK012"

_INPLACE_MUTATORS = frozenset(
    {"patch_value", "patch_insert", "patch_insert_many",
     "patch_delete", "patch_delete_many",
     "recompile_subtree", "recompile_subtrees"}
)

#: plan-returning publication APIs; results are publishable plans
_PLAN_SOURCES = frozenset({"peek_plan", "freeze"})

#: receivers that identify a publisher's ``load()`` (plain ``load`` is
#: far too common a name to taint unconditionally)
_PUBLISHER_NAMES = frozenset({"_published", "publisher", "_publisher"})


def _trailing(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _source_call(
    node: ast.Call, fi: FunctionInfo | None, path: str
) -> str | None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _PLAN_SOURCES:
        return f"{func.attr}() ({path}:{node.lineno})"
    if func.attr == "load" and _trailing(func.value) in _PUBLISHER_NAMES:
        return f"publisher load() ({path}:{node.lineno})"
    return None


def _source_withitem(
    item: ast.withitem, fi: FunctionInfo | None, path: str
) -> str | None:
    expr = item.context_expr
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "pinned"
    ):
        return f"pinned() ({path}:{expr.lineno})"
    return None


def _sink(
    node: ast.Call, name: str | None, fi: FunctionInfo | None, path: str
) -> str | None:
    if path.replace("\\", "/").endswith("core/flat.py"):
        return None
    if name in _INPLACE_MUTATORS and isinstance(node.func, ast.Attribute):
        return f".{name}()"
    return None


def _message(sink: str, origin: str) -> str:
    return (
        f"a publishable FlatPlan (from {origin}) escapes to the in-place "
        f"mutator {sink}; published plans are frozen -- use the applied_* "
        f"copy-on-write constructors"
    )


def run(facts: FactsStore) -> list[TaintFinding]:
    config = TaintConfig(
        rule=RULE,
        source_call=_source_call,
        source_withitem=_source_withitem,
        sink=_sink,
        arg_taint_calls=frozenset({"publish"}),
        # applied_* return fresh private (or freshly cloned) plans; a
        # mutator on *their* result is flat.py's sanctioned business.
        purifiers=frozenset(
            {"applied_values", "applied_insert_many", "applied_delete_many",
             "applied_recompile_subtrees", "compile_plan", "_cow_clone"}
        ),
        message=_message,
    )
    return TaintSolver(facts.model, config).run()
