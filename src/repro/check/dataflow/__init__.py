"""Interprocedural dataflow analyses (rules CHK010-CHK014).

The pattern rules in :mod:`repro.check.lint` judge one statement at a
time; the rules here judge *flows*: facts that are only visible once
you connect definitions to uses across function (and process)
boundaries.  The framework is three layers, all stdlib ``ast``:

* :mod:`~repro.check.dataflow.model` -- a whole-project index:
  every function/method, every class, and a name-heuristic call graph;
* :mod:`~repro.check.dataflow.defuse` + ``facts`` -- per-function
  def-use chains, memoized in a :class:`FactsStore` shared by every
  rule so each tree is walked once;
* :mod:`~repro.check.dataflow.solver` -- a worklist taint solver that
  iterates function summaries to a fixpoint, so a value tainted in one
  function is still tainted three calls later.

The rules:

* **CHK010** -- lock-discipline inference: a write to an attribute
  that every other write protects with ``self.<lock>`` must itself be
  provably lock-held on every call path.
* **CHK011** -- untrusted-bytes taint: bytes born at ``np.memmap`` or
  a pipe ``recv()`` must pass an allowlisted verifier before reaching
  a serving/deserialization sink.
* **CHK012** -- frozen-plan escape: a FlatPlan that can be
  epoch-published must never flow into an in-place ``patch_*`` /
  ``recompile_*`` call outside ``flat.py``.
* **CHK013** -- pipe-protocol conformance: every message tag the
  coordinator sends has a worker handler with a compatible payload
  arity, and every handler verb is reachable.
* **CHK014** -- untimed pipe receives: a raw ``Connection.recv()`` /
  ``.poll(...)`` outside the sanctioned supervision wrappers escapes
  the per-request deadline budget and can wait forever on a hung
  worker.

Findings use the same pragma waivers as CHK001-CHK009 (``#
repro-check: allow CHK011 -- reason``) and the same
:class:`~repro.check.lint.LintFinding` record, so ``repro check
dataflow`` and ``repro check lint --format=json`` share one schema.
Test, example and benchmark trees are exempt: the rules encode src/
invariants, and tests routinely violate them on purpose.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePath
from typing import Iterable

from repro.check.lint import LintFinding
from repro.check.parsing import ParsedFile, parse_paths, parse_source, waived_in_span

from . import escape, locks, pipes, protocol, taint
from .facts import FactsStore
from .model import ProjectModel
from .solver import TaintFinding

DATAFLOW_RULES: dict[str, str] = {
    "CHK010": "guarded attribute written without its lock provably held",
    "CHK011": "untrusted bytes reach a sink without an allowlisted verifier",
    "CHK012": "publishable FlatPlan escapes to an in-place mutator",
    "CHK013": "coordinator/worker pipe-protocol drift",
    "CHK014": "untimed pipe receive outside the supervision wrappers",
}

_RULE_RUNNERS = (locks.run, taint.run, escape.run, protocol.run, pipes.run)

_EXEMPT_PARTS = frozenset({"tests", "test", "examples", "benchmarks"})


def _is_exempt(path: str) -> bool:
    return bool(_EXEMPT_PARTS & set(PurePath(path).parts))


def _span(node: ast.AST) -> tuple[int, int, int]:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    last = getattr(node, "end_lineno", None) or line
    return line, col, last


def analyze_parsed(
    parsed: Iterable[ParsedFile], *, include_waived: bool = False
) -> list[LintFinding]:
    """Run CHK010-CHK013 over already-parsed files.

    The shared single-parse entry point: ``repro check`` parses each
    file once and hands the same :class:`ParsedFile` list to both the
    pattern linter and this engine.
    """
    scoped = [
        pf for pf in parsed if pf.tree is not None and not _is_exempt(pf.path)
    ]
    facts = FactsStore(ProjectModel.build(scoped))
    by_path = {pf.path: pf for pf in scoped}

    findings: list[LintFinding] = []
    for run in _RULE_RUNNERS:
        for raw in run(facts):
            line, col, last = _span(raw.node)
            pf = by_path[raw.path]
            waived = waived_in_span(pf.pragmas, raw.rule, line, last)
            if waived and not include_waived:
                continue
            findings.append(
                LintFinding(raw.path, line, col, raw.rule, raw.message, waived)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_sources(
    sources: dict[str, str], *, include_waived: bool = False
) -> list[LintFinding]:
    """Analyze a path -> source mapping (the test entry point)."""
    parsed = [parse_source(src, path) for path, src in sources.items()]
    return analyze_parsed(parsed, include_waived=include_waived)


def analyze_paths(
    paths: Iterable[str | Path], *, include_waived: bool = False
) -> list[LintFinding]:
    """Analyze every .py file under ``paths``; findings in stable order."""
    return analyze_parsed(parse_paths(paths), include_waived=include_waived)
