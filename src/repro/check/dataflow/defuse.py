"""Per-function def-use facts.

For each function the analysis needs (a) its local defs and uses in
statement order and (b) every write it performs on ``self``
attributes -- plain stores, augmented stores, subscript stores, and
mutating method calls (``self.xs.append(...)`` corrupts shared state
just as surely as ``self.xs = ...``).  The taint solver walks
statements itself (it needs full expression structure); the rules use
these precomputed chains for everything that is not taint-shaped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import FunctionInfo, call_name

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: In-place container mutators (mirrors the pattern lint's list).
MUTATING_CALLS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort",
     "reverse", "fill", "resize", "put", "update", "setdefault",
     "add", "discard"}
)


@dataclass
class SelfWrite:
    """One write to a ``self.<attr>`` slot."""

    attr: str
    node: ast.AST                 # the statement/call performing it
    kind: str                     # "assign" | "aug" | "subscript" | "call"


@dataclass
class FunctionFacts:
    """Def-use chains for one function."""

    info: FunctionInfo
    #: local name -> defining statements, in source order
    defs: dict[str, list[ast.AST]] = field(default_factory=dict)
    #: local name -> reading expressions, in source order
    uses: dict[str, list[ast.Name]] = field(default_factory=dict)
    self_writes: list[SelfWrite] = field(default_factory=list)
    #: attributes of self this function reads
    self_reads: dict[str, list[ast.Attribute]] = field(default_factory=dict)
    returns: list[ast.Return] = field(default_factory=list)


def _is_self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def compute_facts(info: FunctionInfo) -> FunctionFacts:
    """Def-use chains for ``info``, nested defs excluded."""
    facts = FunctionFacts(info)

    def note_target(target: ast.expr, stmt: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            facts.defs.setdefault(target.id, []).append(stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                note_target(el, stmt, kind)
        elif isinstance(target, ast.Starred):
            note_target(target.value, stmt, kind)
        elif isinstance(target, ast.Attribute):
            attr = _is_self_attr(target)
            if attr is not None:
                facts.self_writes.append(SelfWrite(attr, stmt, kind))
        elif isinstance(target, ast.Subscript):
            attr = _is_self_attr(target.value)
            if attr is not None:
                facts.self_writes.append(SelfWrite(attr, stmt, "subscript"))
            elif isinstance(target.value, ast.Name):
                facts.defs.setdefault(target.value.id, []).append(stmt)

    class _Walker(ast.NodeVisitor):
        def _skip(self, node) -> None:  # nested defs get their own facts
            del node

        visit_FunctionDef = _skip
        visit_AsyncFunctionDef = _skip
        visit_Lambda = _skip

        def visit_Assign(self, node: ast.Assign) -> None:
            for t in node.targets:
                note_target(t, node, "assign")
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if node.value is not None:
                note_target(node.target, node, "assign")
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            note_target(node.target, node, "aug")
            self.generic_visit(node)

        def visit_Call(self, node: ast.Call) -> None:
            name = call_name(node.func)
            if name in MUTATING_CALLS and isinstance(node.func, ast.Attribute):
                attr = _is_self_attr(node.func.value)
                if attr is not None:
                    facts.self_writes.append(SelfWrite(attr, node, "call"))
            self.generic_visit(node)

        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, ast.Load):
                facts.uses.setdefault(node.id, []).append(node)

        def visit_Attribute(self, node: ast.Attribute) -> None:
            attr = _is_self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                facts.self_reads.setdefault(attr, []).append(node)
            self.generic_visit(node)

        def visit_Return(self, node: ast.Return) -> None:
            facts.returns.append(node)
            self.generic_visit(node)

    walker = _Walker()
    for stmt in info.node.body:
        walker.visit(stmt)
    return facts
