"""The facts store shared across dataflow rules.

One :class:`FactsStore` is built per ``repro check`` invocation: it
owns the :class:`~repro.check.dataflow.model.ProjectModel` (functions,
classes, call graph) and memoizes the per-function def-use chains so
that CHK010-CHK013 all read the same computed facts instead of
re-walking the trees.
"""

from __future__ import annotations

from .defuse import FunctionFacts, compute_facts
from .model import FunctionInfo, ProjectModel


class FactsStore:
    """Shared, memoized analysis facts for one project."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self._defuse: dict[str, FunctionFacts] = {}

    def defuse(self, fi: FunctionInfo) -> FunctionFacts:
        facts = self._defuse.get(fi.qualname)
        if facts is None:
            facts = self._defuse[fi.qualname] = compute_facts(fi)
        return facts
