"""Offline durability-directory auditor (no replay, no unpickling).

:class:`WalAuditor` points at a directory written by
:class:`repro.durability.DurableDILI` (``snapshot.dili`` + ``wal.log``)
and reports every framing-level problem that crash recovery would have
to work around -- without constructing an index:

* snapshot: magic/version/header shape, payload length, payload CRC
  (checked over the raw bytes, the payload is never unpickled);
* WAL: magic, per-record frame integrity and CRC, torn tail, and
  strict LSN monotonicity (``scan_wal`` enforces consecutive seqnos);
* cross-file: the WAL's first surviving record must not leave an LSN
  gap after the snapshot's ``last_seqno`` (records in the gap are
  lost forever; overlap is fine -- replay skips it).

A *torn tail* (truncated final record) is reported as recoverable --
that is the crash pattern the WAL is designed for -- while everything
else is flagged as damage.  ``repro check audit-wal DIR`` is the CLI
wrapper.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.durability.recovery import SNAPSHOT_NAME, WAL_NAME
from repro.durability.snapshot import (
    HEADER_SIZE,
    SnapshotError,
    read_snapshot_header,
)
from repro.durability.wal import scan_wal


@dataclass(frozen=True)
class AuditFinding:
    """One problem found in a durability directory."""

    kind: str
    detail: str
    recoverable: bool

    def format(self) -> str:
        tag = "recoverable" if self.recoverable else "DAMAGE"
        return f"[{tag}] {self.kind}: {self.detail}"


@dataclass(frozen=True)
class AuditReport:
    """Outcome of :meth:`WalAuditor.audit`."""

    directory: str
    findings: list
    snapshot_seqno: int | None  # None when no snapshot exists
    wal_records: int
    wal_valid_bytes: int

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def damaged(self) -> bool:
        return any(not f.recoverable for f in self.findings)


class WalAuditor:
    """Audit ``dirpath`` for WAL/snapshot framing violations."""

    def __init__(self, dirpath) -> None:
        self.dirpath = os.fspath(dirpath)

    def audit(self) -> AuditReport:
        findings: list[AuditFinding] = []
        snapshot_seqno = self._audit_snapshot(findings)
        records, valid = self._audit_wal(findings, snapshot_seqno)
        return AuditReport(
            directory=self.dirpath,
            findings=findings,
            snapshot_seqno=snapshot_seqno,
            wal_records=records,
            wal_valid_bytes=valid,
        )

    # -- snapshot ------------------------------------------------------

    def _audit_snapshot(self, findings: list) -> int | None:
        path = os.path.join(self.dirpath, SNAPSHOT_NAME)
        if not os.path.exists(path):
            return None
        try:
            _, last_seqno, payload_len, crc = read_snapshot_header(path)
        except SnapshotError as exc:
            findings.append(
                AuditFinding("snapshot-header", str(exc), recoverable=False)
            )
            return None
        actual = os.path.getsize(path) - HEADER_SIZE
        if actual != payload_len:
            findings.append(
                AuditFinding(
                    "snapshot-length",
                    f"header promises {payload_len} payload bytes, file "
                    f"holds {actual}",
                    recoverable=False,
                )
            )
            return last_seqno
        with open(path, "rb") as fh:
            fh.seek(HEADER_SIZE)
            checksum = zlib.crc32(fh.read())
        if checksum != crc:
            findings.append(
                AuditFinding(
                    "snapshot-crc",
                    f"payload checksum {checksum:#010x} != recorded "
                    f"{crc:#010x}",
                    recoverable=False,
                )
            )
        return last_seqno

    # -- WAL -----------------------------------------------------------

    def _audit_wal(
        self, findings: list, snapshot_seqno: int | None
    ) -> tuple[int, int]:
        path = os.path.join(self.dirpath, WAL_NAME)
        if not os.path.exists(path):
            return 0, 0
        try:
            scan = scan_wal(path)
        except ValueError as exc:  # foreign magic / not a WAL at all
            findings.append(
                AuditFinding("wal-foreign", str(exc), recoverable=False)
            )
            return 0, 0
        if scan.truncated:
            reason = scan.reason or "unknown"
            tail = os.path.getsize(path) - scan.valid_offset
            # A torn final record is the expected crash artifact; CRC
            # or sequencing damage mid-log is not.
            recoverable = reason in (
                "short file header",
                "torn record header",
                "torn record body",
            )
            findings.append(
                AuditFinding(
                    "wal-torn-tail" if recoverable else "wal-damage",
                    f"{reason}: {tail} trailing byte(s) after the last "
                    f"valid record (offset {scan.valid_offset})",
                    recoverable=recoverable,
                )
            )
        if scan.records:
            first = scan.records[0].seqno
            expected = 1 if snapshot_seqno is None else snapshot_seqno + 1
            if first > expected:
                findings.append(
                    AuditFinding(
                        "lsn-gap",
                        f"WAL starts at seqno {first} but the snapshot "
                        f"covers only <= {expected - 1}; records "
                        f"{expected}..{first - 1} are lost",
                        recoverable=False,
                    )
                )
        return len(scan.records), scan.valid_offset


def audit_directory(dirpath) -> AuditReport:
    """Convenience wrapper: ``WalAuditor(dirpath).audit()``."""
    return WalAuditor(dirpath).audit()
