"""Lock-discipline sanitizer for :class:`repro.core.concurrent.ConcurrentDILI`.

The A.8 protocol is easy to get subtly wrong: a point writer must hold
the stripe of the top-level leaf it mutates, scans and batch operations
must hold :meth:`~repro.core.concurrent.ConcurrentDILI.exclusive`
(global + every stripe), and any code path that acquires two locks must
acquire them in a globally consistent order or a deadlock is one
unlucky schedule away.

:class:`LockSanitizer` attaches to a live ``ConcurrentDILI`` (via its
``instrument_locks`` hook) and checks all three *as the workload runs*:

* every stripe and the global lock are wrapped so each thread's
  acquisition order feeds a shared lock-order graph; an acquisition
  that closes a cycle in that graph is reported as a **lock-order
  inversion** (the deadlock precondition, caught even when the run got
  lucky);
* the wrapped index intercepts structure access: point operations
  without the owning stripe are reported as **unlocked access**, scans
  and batch operations without every stripe as **non-exclusive scans**.

Epoch-pinned batch reads are *legal without any lock*: the lock-free
read path descends the frozen published plan, never the inner index,
so it does not trip the exclusive check -- the contract it must honor
instead is the RCU one, which the sanitizer verifies through
``ConcurrentDILI._plan_read_guard``: every lock-free read must (a)
hold an epoch pin for the duration of the descent (else a concurrent
retire could reclaim the buffers out from under it -- reported as
**unpinned-plan-read**) and (b) run against a frozen plan (a mutable
published plan is a torn read waiting to happen).  Batch calls that
reach the *inner* index (the recompile fallback) still require
``exclusive()`` exactly as before: they may compile and install a new
plan, which is a write.

Violations are recorded (not raised) so a whole workload can be
examined; call :meth:`LockSanitizer.assert_clean` at the end to turn
any finding into a :class:`~repro.check.errors.SanitizerViolation`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.check.errors import SanitizerViolation
from repro.core.nodes import InternalNode


@dataclass(frozen=True)
class LockViolation:
    """One observed breach of the locking protocol."""

    # "order-inversion" | "unlocked-access" | "non-exclusive-scan"
    # | "unpinned-plan-read"
    kind: str
    message: str
    thread: str

    def format(self) -> str:
        return f"[{self.kind}] {self.message} (thread {self.thread})"


class _InstrumentedLock:
    """RLock proxy that reports acquisitions to the sanitizer."""

    __slots__ = ("inner", "name", "_san", "_counts")

    def __init__(self, inner, name: str, san: "LockSanitizer") -> None:
        self.inner = inner
        self.name = name
        self._san = san
        self._counts: dict[int, int] = {}  # thread id -> recursion depth

    def held_by_me(self) -> bool:
        return self._counts.get(threading.get_ident(), 0) > 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self.inner.acquire(blocking, timeout)
        if got:
            tid = threading.get_ident()
            depth = self._counts.get(tid, 0)
            if depth == 0:
                self._san._note_acquire(self)
            self._counts[tid] = depth + 1
        return got

    def release(self) -> None:
        tid = threading.get_ident()
        depth = self._counts.get(tid, 0)
        if depth <= 1:
            self._counts.pop(tid, None)
            if depth == 1:
                self._san._note_release(self)
        else:
            self._counts[tid] = depth - 1
        self.inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# Operations that cross top-level leaf boundaries (or rebuild the tree)
# and therefore require exclusive() -- mirrors docs/api.md's contract.
_EXCLUSIVE_OPS = frozenset(
    {
        "get_batch", "contains_batch", "count_range", "count_range_batch",
        "insert_batch", "delete_batch", "update_batch",
        "bulk_insert", "bulk_load", "range_query", "items", "scan",
        "iter_from",
    }
)
# Point operations that must hold the owning leaf's stripe.
_POINT_WRITES = frozenset({"insert", "delete", "update"})
_POINT_READS = frozenset({"get"})


class _GuardedDILI:
    """Wraps the inner ``DILI`` to flag structure access without locks."""

    def __init__(self, inner, san: "LockSanitizer") -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_san", san)

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        san = self._san
        if name in _EXCLUSIVE_OPS:
            def exclusive_guard(*args, __attr=attr, __name=name, **kwargs):
                san._check_exclusive(__name)
                return __attr(*args, **kwargs)

            return exclusive_guard
        if name in _POINT_WRITES or name in _POINT_READS:
            def point_guard(key, *args, __attr=attr, __name=name, **kwargs):
                san._check_point(__name, key)
                return __attr(key, *args, **kwargs)

            return point_guard
        return attr


class LockSanitizer:
    """Attach to a ``ConcurrentDILI``; detach restores the original locks.

    Usage::

        cd = ConcurrentDILI(stripes=32)
        san = LockSanitizer(cd)
        ...run a threaded workload...
        san.assert_clean()   # raises SanitizerViolation on any finding
        san.detach()
    """

    def __init__(self, target) -> None:
        self._target = target
        self._orig_locks = list(target._locks)
        self._orig_global = target._global
        self._orig_index = target._index
        self._orig_plan_guard = getattr(target, "_plan_read_guard", None)
        self._mutex = threading.Lock()
        self._edges: dict[str, set[str]] = {}  # name -> names locked after
        self._held = threading.local()
        self.violations: list[LockViolation] = []
        target.instrument_locks(
            lambda lock, name: _InstrumentedLock(lock, name, self),
            index_proxy=lambda inner: _GuardedDILI(inner, self),
        )
        if hasattr(target, "_plan_read_guard"):
            target._plan_read_guard = self._check_plan_read

    # -- lifecycle -----------------------------------------------------

    def detach(self) -> None:
        """Restore the original locks, index object, and read guard."""
        self._target._locks = self._orig_locks
        self._target._global = self._orig_global
        self._target._index = self._orig_index
        if hasattr(self._target, "_plan_read_guard"):
            self._target._plan_read_guard = self._orig_plan_guard

    def assert_clean(self) -> None:
        if self.violations:
            lines = "\n".join(v.format() for v in self.violations)
            raise SanitizerViolation(
                f"{len(self.violations)} lock-discipline violation(s):\n"
                f"{lines}"
            )

    # -- bookkeeping from the instrumented locks ------------------------

    def _held_list(self) -> list:
        held = getattr(self._held, "locks", None)
        if held is None:
            held = []
            self._held.locks = held
        return held

    def _note_acquire(self, lock: _InstrumentedLock) -> None:
        held = self._held_list()
        with self._mutex:
            for prior in held:
                if prior.name == lock.name:
                    continue
                if self._reaches(lock.name, prior.name):
                    self._record(
                        "order-inversion",
                        f"acquired {lock.name} while holding {prior.name}, "
                        f"but another path acquires them in the opposite "
                        f"order",
                    )
                else:
                    self._edges.setdefault(prior.name, set()).add(lock.name)
        held.append(lock)

    def _note_release(self, lock: _InstrumentedLock) -> None:
        held = self._held_list()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                break

    def _reaches(self, src: str, dst: str) -> bool:
        """Is there a path src -> dst in the acquired-after graph?"""
        stack = [src]
        seen = set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, ()))
        return False

    def _record(self, kind: str, message: str) -> None:
        # May run while _mutex is held (from _note_acquire); list.append
        # is atomic under the GIL, so no extra latch is needed.
        self.violations.append(
            LockViolation(kind, message, threading.current_thread().name)
        )

    # -- structure-access checks (from _GuardedDILI) --------------------

    def _stripe_count_held(self) -> int:
        return sum(1 for lock in self._target._locks if lock.held_by_me())

    def _holds_all_stripes(self) -> bool:
        return all(lock.held_by_me() for lock in self._target._locks)

    def _holds_stripe_for(self, key: float) -> bool:
        node = self._orig_index.root
        while type(node) is InternalNode:
            node = node.children[node.child_index(key)]
        if node is None:  # empty tree: only exclusive() is safe
            return False
        locks = self._target._locks
        lock = locks[id(node) % len(locks)]
        return lock.held_by_me()

    def _check_exclusive(self, op: str) -> None:
        if not self._holds_all_stripes():
            held = self._stripe_count_held()
            self._record(
                "non-exclusive-scan",
                f"{op}() crosses leaf boundaries but ran with {held} of "
                f"{len(self._target._locks)} stripes held; it requires "
                f"exclusive()",
            )

    def _check_point(self, op: str, key) -> None:
        if self._holds_all_stripes():
            return
        if not self._holds_stripe_for(key):
            self._record(
                "unlocked-access",
                f"{op}({key!r}) touched the tree without holding the "
                f"owning leaf's stripe",
            )

    # -- epoch-pinned plan reads (from ConcurrentDILI._plan_read_guard) --

    def _check_plan_read(self, plan) -> None:
        """Verify a lock-free batch read honors the RCU contract.

        Installed as ``ConcurrentDILI._plan_read_guard`` and invoked
        with the snapshot on every pinned-plan read.  No lock is
        required -- that is the point -- but the reading thread must
        hold an epoch pin (or retirement cannot see it and the plan
        could be reclaimed mid-descent) and the plan must be frozen
        (publication freezes; descending a mutable plan races its
        patcher).
        """
        if not self._target._published.current_thread_pinned():
            self._record(
                "unpinned-plan-read",
                "published plan read without an epoch pin; a concurrent "
                "retire could reclaim the snapshot mid-descent",
            )
        if not getattr(plan, "frozen", False):
            self._record(
                "unpinned-plan-read",
                f"plan v{getattr(plan, 'version', '?')} served to a "
                f"lock-free reader while still mutable; publish() must "
                f"freeze it first",
            )
