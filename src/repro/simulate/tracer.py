"""Tracing protocol connecting index probes to the cost model.

Every index in this repository implements its lookup as
``_lookup(key, tracer)``.  The tracer receives two kinds of events:

* ``mem(region, offset)`` -- the probe read memory at byte ``offset``
  inside the object identified by ``region``.  The tracer folds this to a
  cache-line identifier and charges a hit or a miss.
* ``compute(cycles)`` -- the probe performed ``cycles`` worth of
  arithmetic (model evaluations, comparisons, search-loop overhead).

Production-path calls (``index.get``) pass :data:`NULL_TRACER`, whose
methods are no-ops, so correctness tests and real-time benchmarks pay only
an attribute lookup.  Cost benchmarks pass a :class:`CostTracer`.

The vectorized batch read path (:mod:`repro.core.flat`) also speaks
this protocol: it records the batch descent and replays it per key, so
one tracer sees the identical event stream -- and therefore produces
identical totals -- whether lookups went through ``get`` or
``get_batch``.  Event *order* is part of that contract (the LRU cache
simulation is stateful); replayers must emit events in batch order.
"""

from __future__ import annotations

import itertools
from typing import Hashable

from repro.simulate.cache import CacheSimulator
from repro.simulate.latency import CACHE_LINE_BYTES, DEFAULT_CYCLES, CyclesPerOp

_region_counter = itertools.count(1)


def region_id() -> int:
    """Return a fresh identifier for a contiguous memory region.

    Index structures call this once per allocated node or array and pass
    the identifier to ``tracer.mem``; the tracer then distinguishes
    cache lines *within* the region by byte offset.
    """
    return next(_region_counter)


class Tracer:
    """Base tracer; both events are no-ops.  Subclass to record costs."""

    __slots__ = ()

    def mem(self, region: int, offset: int = 0) -> None:
        """Record a memory access at ``offset`` bytes into ``region``."""

    def compute(self, cycles: float) -> None:
        """Record ``cycles`` of non-memory work."""

    def phase(self, name: str) -> None:
        """Switch the accounting phase (e.g. 'step1' / 'step2')."""


class NullTracer(Tracer):
    """Shared do-nothing tracer for production code paths."""

    __slots__ = ()


NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Tracer that buffers events for later replay into a real tracer.

    The batched write path processes keys grouped by target leaf, but
    the simulated LRU cache is stateful: event *order* changes hit/miss
    outcomes, and the contract is that batch operations charge exactly
    what the equivalent scalar loop would have charged, in the same
    order.  So each key's events are recorded into one of these while
    the batch executes in group order, then :meth:`replay` emits the
    per-key streams back in original batch order.

    Per-key event streams are identical under both execution orders
    because operations on different top-level leaves touch disjoint
    state and keys within one leaf keep their relative order.
    """

    __slots__ = ("events",)

    _MEM = 0
    _COMPUTE = 1
    _PHASE = 2

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def mem(self, region: int, offset: int = 0) -> None:
        self.events.append((self._MEM, region, offset))

    def compute(self, cycles: float) -> None:
        self.events.append((self._COMPUTE, cycles, 0))

    def phase(self, name: str) -> None:
        self.events.append((self._PHASE, name, 0))

    def replay(self, tracer: Tracer) -> None:
        """Emit every buffered event into ``tracer``, in order."""
        mem = tracer.mem
        compute = tracer.compute
        phase = tracer.phase
        for kind, a, b in self.events:
            if kind == self._MEM:
                mem(a, b)
            elif kind == self._COMPUTE:
                compute(a)
            else:
                phase(a)


class CostTracer(Tracer):
    """Tracer that accumulates simulated cycles and cache misses.

    Args:
        cache: Cache simulator deciding hits vs. misses.  A fresh 4 MiB
            LRU cache is created when omitted.
        cycles: Charge table; defaults to the paper's constants.

    Attributes:
        total_cycles: Simulated cycles accumulated so far.
        mem_accesses: Number of ``mem`` events.
        phase_cycles: Mapping from phase name to cycles spent in it.
    """

    __slots__ = (
        "cache",
        "cycles_per_op",
        "total_cycles",
        "mem_accesses",
        "phase_cycles",
        "_phase",
    )

    def __init__(
        self,
        cache: CacheSimulator | None = None,
        cycles: CyclesPerOp = DEFAULT_CYCLES,
    ) -> None:
        self.cache = cache if cache is not None else CacheSimulator()
        self.cycles_per_op = cycles
        self.total_cycles = 0.0
        self.mem_accesses = 0
        self.phase_cycles: dict[str, float] = {}
        self._phase: str | None = None

    @property
    def cache_misses(self) -> int:
        """Total misses recorded by the underlying cache simulator."""
        return self.cache.misses

    def mem(self, region: int, offset: int = 0) -> None:
        self.mem_accesses += 1
        block: Hashable = (region, offset // CACHE_LINE_BYTES)
        if self.cache.touch(block):
            self._charge(self.cycles_per_op.cache_miss)
        else:
            self._charge(self.cycles_per_op.cache_hit)

    def compute(self, cycles: float) -> None:
        self._charge(cycles)

    def phase(self, name: str) -> None:
        # Hot in batch replay (two calls per key): skip the setdefault
        # machinery once the phase bucket exists.
        self._phase = name
        if name not in self.phase_cycles:
            self.phase_cycles[name] = 0.0

    def _charge(self, cycles: float) -> None:
        self.total_cycles += cycles
        if self._phase is not None:
            self.phase_cycles[self._phase] += cycles

    def reset_counters(self) -> None:
        """Zero the accumulated cycles/accesses but keep cache contents.

        Benchmarks warm the cache with a batch of probes, reset counters,
        then measure, mimicking steady-state hardware counters.
        """
        self.total_cycles = 0.0
        self.mem_accesses = 0
        self.phase_cycles = {}
        self._phase = None
        self.cache.hits = 0
        self.cache.misses = 0

    def nanoseconds(self, ghz: float = 2.5) -> float:
        """Total simulated time in nanoseconds."""
        return self.cycles_per_op.to_nanoseconds(self.total_cycles, ghz)
