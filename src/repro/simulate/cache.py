"""A small LRU cache-line simulator.

Indexes report the cache-line-sized blocks they touch while answering a
probe; this simulator decides which of those touches would have been LL
cache hits and which would have gone to main memory.  It is deliberately
simple -- fully associative LRU over opaque block identifiers -- because
the quantity the paper compares (Table 5) is the *relative* number of
misses per query across index structures, which is dominated by how many
distinct lines a traversal touches and how well the hot top-of-tree lines
stay resident.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class CacheSimulator:
    """Fully associative LRU cache over opaque block identifiers.

    Args:
        capacity_lines: Number of 64-byte lines the cache holds.  The
            default (65536 lines = 4 MiB) is small enough that leaf-level
            data of a benchmark-sized dataset does not all fit, which is
            the regime the paper's LL-cache numbers reflect.
    """

    def __init__(self, capacity_lines: int = 65536) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        self.capacity_lines = capacity_lines
        self._lines: OrderedDict[Hashable, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def touch(self, block: Hashable) -> bool:
        """Access ``block``; return True on a miss (main-memory load)."""
        lines = self._lines
        if block in lines:
            lines.move_to_end(block)
            self.hits += 1
            return False
        self.misses += 1
        if len(lines) >= self.capacity_lines:
            lines.popitem(last=False)
        lines[block] = None
        return True

    def contains(self, block: Hashable) -> bool:
        """Return whether ``block`` is resident (without touching it)."""
        return block in self._lines

    def clear(self) -> None:
        """Drop all resident lines and reset hit/miss counters."""
        self._lines.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheSimulator(capacity_lines={self.capacity_lines}, "
            f"resident={len(self._lines)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
