"""Access-pattern statistics: node visits and footprint per probe.

The paper argues with structural access counts ("DILI accesses only
0.2-1 node per point query on average", Section 7.3).  This tracer
records, per probe, how many node headers were touched (memory events
at offset 0 of a region), how many distinct regions participated, and
the total touches -- without any cost model, so the numbers are pure
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulate.tracer import Tracer


@dataclass(frozen=True)
class AccessProfile:
    """Aggregate access statistics over a batch of probes.

    Attributes:
        probes: Number of probes profiled.
        nodes_per_probe: Mean node-header touches per probe (tree depth
            as experienced by the memory system).
        regions_per_probe: Mean distinct memory regions per probe.
        touches_per_probe: Mean total memory touches per probe.
        max_nodes: Worst-case node touches in a single probe.
    """

    probes: int
    nodes_per_probe: float
    regions_per_probe: float
    touches_per_probe: float
    max_nodes: int


class AccessStatsTracer(Tracer):
    """Tracer that counts structure, not cycles.

    Call :meth:`next_probe` between probes (or use
    :func:`profile_lookups`, which does it for you).
    """

    __slots__ = (
        "_node_touches",
        "_regions",
        "_touches",
        "_per_probe_nodes",
        "_per_probe_regions",
        "_per_probe_touches",
    )

    def __init__(self) -> None:
        self._node_touches = 0
        self._regions: set[int] = set()
        self._touches = 0
        self._per_probe_nodes: list[int] = []
        self._per_probe_regions: list[int] = []
        self._per_probe_touches: list[int] = []

    def mem(self, region: int, offset: int = 0) -> None:
        self._touches += 1
        self._regions.add(region)
        if offset == 0:
            self._node_touches += 1

    def compute(self, cycles: float) -> None:  # structure only
        pass

    def phase(self, name: str) -> None:
        pass

    def next_probe(self) -> None:
        """Close the current probe's counters and start a new one."""
        self._per_probe_nodes.append(self._node_touches)
        self._per_probe_regions.append(len(self._regions))
        self._per_probe_touches.append(self._touches)
        self._node_touches = 0
        self._regions = set()
        self._touches = 0

    def profile(self) -> AccessProfile:
        """Aggregate everything recorded so far."""
        counts = self._per_probe_nodes
        if not counts:
            return AccessProfile(0, 0.0, 0.0, 0.0, 0)
        n = len(counts)
        return AccessProfile(
            probes=n,
            nodes_per_probe=sum(counts) / n,
            regions_per_probe=sum(self._per_probe_regions) / n,
            touches_per_probe=sum(self._per_probe_touches) / n,
            max_nodes=max(counts),
        )


def profile_lookups(index, keys) -> AccessProfile:
    """Profile ``index.get`` over ``keys`` and aggregate the accesses."""
    tracer = AccessStatsTracer()
    for key in keys:
        index.get(float(key), tracer)
        tracer.next_probe()
    return tracer.profile()
