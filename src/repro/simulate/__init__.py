"""Hardware-behaviour simulation used to score index structures.

The paper evaluates C++ implementations with wall-clock nanoseconds and
hardware LL-cache-miss counters.  A pure-Python reproduction cannot match
absolute numbers, so this package provides the substitute measurement
substrate described in DESIGN.md:

* :mod:`repro.simulate.tracer` -- a tracing protocol.  Every index
  implementation reports its memory touches (cache-line-sized blocks) and
  its arithmetic work (cycles) to a tracer while answering a probe.
* :mod:`repro.simulate.cache` -- an LRU cache-line simulator that decides
  which touches hit and which miss.
* :mod:`repro.simulate.latency` -- the cycle-cost model with the constants
  from Section 7.1 of the paper (theta_N = theta_C = 130 cycles per
  cache-line load, eta = 25 cycles per linear-model evaluation, ...).

Costs are structural: an index that traverses fewer nodes, touches fewer
cache lines, and performs fewer search iterations scores lower.  This is
exactly the quantity the paper's Tables 4, 5, 9 and 11 compare.
"""

from repro.simulate.cache import CacheSimulator
from repro.simulate.latency import CyclesPerOp, DEFAULT_CYCLES
from repro.simulate.tracer import (
    NULL_TRACER,
    CostTracer,
    NullTracer,
    Tracer,
    region_id,
)

__all__ = [
    "CacheSimulator",
    "CostTracer",
    "CyclesPerOp",
    "DEFAULT_CYCLES",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "region_id",
]
