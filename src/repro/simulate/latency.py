"""Cycle-cost constants mirroring Section 7.1 of the DILI paper.

The paper calibrates its cost model on a Xeon Platinum 8163:

* an LL-cache line is 64 bytes and fetching one from main memory costs
  about 130 cycles at worst (``theta_N`` and ``theta_C``),
* executing a linear function including type casts costs about 25 cycles
  (``eta``),
* the non-memory work of one linear-search iteration costs about 5 cycles
  (``mu_L``) and of one exponential-search iteration about 17 cycles
  (``mu_E``).

Simulated lookup "nanoseconds" reported by the benchmarks are cycle counts
scaled by an assumed clock so the magnitudes are comparable to the paper's
tables.  Only ratios between methods are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

CACHE_LINE_BYTES = 64
"""Size of one simulated cache line (matches the paper's machine)."""


@dataclass(frozen=True)
class CyclesPerOp:
    """Cycle charges for the primitive operations of an index probe.

    Attributes:
        cache_miss: Loading a cache line from main memory (``theta_N``,
            ``theta_C`` and ``theta_E`` in the paper).
        cache_hit: Touching a line already resident in the simulated cache.
            The paper treats hits as nearly free next to the 130-cycle
            misses; a small nonzero charge keeps long in-cache scans from
            being free.
        linear_model: Evaluating ``a + b * x`` with the final cast
            (``eta``).
        linear_search_step: Non-memory work per linear-search iteration
            (``mu_L``).
        exp_search_step: Non-memory work per exponential/binary-search
            iteration (``mu_E``).
        branch: A predicted-taken branch or comparison outside a search
            loop.
    """

    cache_miss: float = 130.0
    cache_hit: float = 4.0
    linear_model: float = 25.0
    linear_search_step: float = 5.0
    exp_search_step: float = 17.0
    branch: float = 2.0

    def to_nanoseconds(self, cycles: float, ghz: float = 2.5) -> float:
        """Convert a cycle count to nanoseconds at ``ghz`` (8163 base clock)."""
        return cycles / ghz


DEFAULT_CYCLES = CyclesPerOp()
"""Module-wide default charge table; benchmarks share this instance."""
