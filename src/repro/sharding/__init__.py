"""Sharded multi-process serving over the mmap plan store.

The first GIL-escaping path: the keyspace is cut into contiguous range
shards, each a full :class:`~repro.durability.durable.DurableDILI`
state directory whose compiled plan is published through
:mod:`repro.planstore` and served zero-copy by a dedicated worker
*process*; a coordinator with a learned Eq.1 router scatter/gathers
batches over the worker pipes, preserving input order and -- for
aligned partitions -- per-key simulated costs (±0 cycles vs the
unsharded index).

Modules:

* :mod:`repro.sharding.router` -- learned key-space router with
  binary-search last mile, plus the bit-exact aligned child router.
* :mod:`repro.sharding.partition` -- quantile partitioning, per-shard
  distribution tuning (grid search on the local CDF under the
  simulated cost model), and the aligned global-tree split.
* :mod:`repro.sharding.manifest` -- the atomic ``shards.json``.
* :mod:`repro.sharding.worker` -- the per-shard worker process (the
  only sharding module allowed to touch index state; CHK009), with a
  heartbeat thread so the coordinator can tell hung from slow.
* :mod:`repro.sharding.coordinator` -- ``ShardedDILI``: scatter /
  gather, supervised worker restart, and the split/merge rebalancer.
* :mod:`repro.sharding.supervision` -- per-request ``Deadline``
  budgets, the sanctioned pipe-receive wrappers (CHK014), and the
  ``FleetSupervisor`` per-shard health ledgers that derive aggregate
  coordinator health and gate restarts.
* :mod:`repro.sharding.breaker` -- per-shard ``CircuitBreaker``
  (CLOSED -> OPEN -> HALF_OPEN) and the exponential-backoff
  ``RestartPolicy`` that isolate crash-looping shards.
* :mod:`repro.sharding.chaos` -- seeded chaos harnesses: worker-kill +
  mid-rebalance (zero wrong reads) and the supervision schedule
  (SIGSTOP hangs, slow workers, crash loops, partial-result audits).
"""

from repro.sharding.breaker import BreakerState, CircuitBreaker, RestartPolicy
from repro.sharding.coordinator import (
    ShardedDILI,
    WorkerDied,
    WorkerRemoteError,
)
from repro.sharding.supervision import (
    UNAVAILABLE,
    Deadline,
    DeadlineExceeded,
    FleetSupervisor,
    ShardUnavailableError,
    WorkerHung,
)
from repro.sharding.manifest import Manifest, read_manifest, write_manifest
from repro.sharding.partition import (
    build_range_shards,
    fit_shard_config,
    quantile_boundaries,
    split_aligned,
)
from repro.sharding.router import AlignedRouter, ShardRouter, router_from_dict
from repro.sharding.worker import ShardWorker

__all__ = [
    "AlignedRouter",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FleetSupervisor",
    "Manifest",
    "RestartPolicy",
    "ShardRouter",
    "ShardUnavailableError",
    "ShardWorker",
    "ShardedDILI",
    "UNAVAILABLE",
    "WorkerDied",
    "WorkerHung",
    "WorkerRemoteError",
    "build_range_shards",
    "fit_shard_config",
    "quantile_boundaries",
    "read_manifest",
    "router_from_dict",
    "split_aligned",
    "write_manifest",
]
