"""Chaos harness for sharded serving: kills, rebalances, zero wrong reads.

Drives a real multi-process :class:`~repro.sharding.coordinator.ShardedDILI`
through a scripted schedule of batch reads and writes while SIGKILLing
workers -- including one killed *mid-rebalance*, between the moment the
replacement shard directories are fully built and the atomic router
swap -- and audits every single read against a shadow dict.  The
contract under test is the ISSUE 8 acceptance line: **zero wrong
reads**, surviving shards keep serving, and every dead worker restarts
from its shard directory via the PR 6 fallback ladder (the restarted
worker must come back serving a published plan generation, not a
degraded stub).

Deterministic: all scheduling flows from one seeded RNG, so a failure
reproduces from its seed.

ISSUE 10 adds the *supervision* chaos schedule
(:func:`run_supervision_chaos`): on top of SIGKILL it injects **hangs**
(SIGSTOP -- the process lives, heartbeats stop), **slow workers** (the
``set_delay`` verb: serving latency with heartbeats flowing) and a
**crash loop** (the shard directory poisoned into a plain file, so
every restart dies at startup) and asserts the fleet-supervision
contract: hung workers are replaced within one request deadline, slow
workers are *not* killed, the crash-looping shard trips its circuit
breaker within the restart budget while every healthy shard keeps
answering, partial-mode reads report exactly the unavailable keys, and
the fleet heals to HEALTHY once the poison is removed.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.sharding.breaker import BreakerState, RestartPolicy
from repro.sharding.coordinator import ShardedDILI
from repro.sharding.supervision import UNAVAILABLE, ShardUnavailableError


@dataclass
class ShardChaosReport:
    """What happened, and whether serving stayed correct."""

    seed: int
    rounds: int = 0
    reads: int = 0
    wrong_reads: int = 0
    writes: int = 0
    lost_writes: int = 0
    kills: int = 0
    restarts: int = 0
    rebalances: int = 0
    mid_rebalance_kills: int = 0
    final_shards: int = 0
    final_keys: int = 0
    events: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.wrong_reads == 0 and self.lost_writes == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "reads": self.reads,
            "wrong_reads": self.wrong_reads,
            "writes": self.writes,
            "lost_writes": self.lost_writes,
            "kills": self.kills,
            "restarts": self.restarts,
            "rebalances": self.rebalances,
            "mid_rebalance_kills": self.mid_rebalance_kills,
            "final_shards": self.final_shards,
            "final_keys": self.final_keys,
            "clean": self.clean,
        }


def _audit_reads(
    index: ShardedDILI,
    queries: np.ndarray,
    shadow: dict,
    report: ShardChaosReport,
) -> None:
    got = index.get_batch(queries)
    report.reads += len(queries)
    for key, value in zip(queries.tolist(), got):
        if value != shadow.get(key):
            report.wrong_reads += 1


def run_shard_chaos(
    *,
    num_shards: int = 4,
    num_keys: int = 2_000,
    rounds: int = 6,
    batch: int = 256,
    seed: int = 0,
    kill_every: int = 2,
    rebalance_round: int = 3,
    dirpath=None,
    processes: bool = True,
) -> ShardChaosReport:
    """Serve under fire; return the audit.

    Schedule per round: audit a read batch (existing + absent keys),
    apply an insert + delete batch, audit again.  Every
    ``kill_every``-th round SIGKILLs a random worker right before the
    read audit (the next request finds the corpse, restarts it from
    its shard directory, and retries).  On ``rebalance_round`` the
    busiest shard is split with a worker kill injected *between* the
    build of the replacement directories and the atomic swap.
    """
    rng = np.random.default_rng(seed)
    report = ShardChaosReport(seed=seed)
    keys = np.unique(rng.integers(0, 10_000_000, size=num_keys)).astype(
        np.float64
    )
    values = [int(k) * 3 for k in keys]
    shadow = dict(zip(keys.tolist(), values))
    own_dir = dirpath is None
    if own_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-chaos-")
        dirpath = tmp.name
    next_fresh = 20_000_000  # insert keys disjoint from the loaded range
    try:
        with ShardedDILI.create(
            dirpath,
            keys,
            values,
            num_shards=num_shards,
            partition="range",
            tuning="local",
            processes=processes,
            sync=False,
        ) as index:
            for round_no in range(rounds):
                report.rounds = round_no + 1
                if kill_every and round_no % kill_every == 1:
                    victim = int(rng.integers(0, index.num_shards))
                    index.kill_worker(victim)
                    report.kills += 1
                    report.events.append(
                        f"round {round_no}: killed worker {victim}"
                    )
                hits = rng.choice(keys, size=batch // 2, replace=True)
                misses = rng.uniform(0, 30_000_000, size=batch // 2)
                queries = np.concatenate((hits, misses))
                rng.shuffle(queries)
                _audit_reads(index, queries, shadow, report)

                fresh = np.arange(
                    next_fresh, next_fresh + batch // 4, dtype=np.float64
                )
                next_fresh += batch // 4
                inserted = index.insert_batch(fresh, [int(k) for k in fresh])
                report.writes += len(fresh)
                for key, ok in zip(fresh.tolist(), inserted.tolist()):
                    shadow[key] = int(key)
                    if not ok:
                        report.lost_writes += 1
                doomed = rng.choice(keys, size=batch // 8, replace=False)
                index.delete_batch(doomed)
                report.writes += len(doomed)
                for key in doomed.tolist():
                    shadow.pop(key, None)
                keys = np.asarray(
                    sorted(set(keys.tolist()) - set(doomed.tolist())),
                    dtype=np.float64,
                )

                if round_no == rebalance_round and index.num_shards > 1:
                    busiest = int(np.argmax(index.ops_counts))
                    victim = (busiest + 1) % index.num_shards

                    def mid_kill() -> None:
                        index.kill_worker(victim)
                        report.kills += 1
                        report.mid_rebalance_kills += 1
                        report.events.append(
                            f"round {round_no}: killed worker {victim} "
                            f"mid-rebalance of shard {busiest}"
                        )

                    index.split_shard(busiest, mid_hook=mid_kill)
                    report.events.append(
                        f"round {round_no}: split shard {busiest}"
                    )
                _audit_reads(index, queries, shadow, report)

            # Closing audit: every surviving key, plus worker health.
            all_keys = np.asarray(sorted(shadow), dtype=np.float64)
            _audit_reads(index, all_keys, shadow, report)
            report.restarts = index.restarts
            report.rebalances = index.rebalances
            report.final_shards = index.num_shards
            report.final_keys = len(index)
            if report.final_keys != len(shadow):
                report.lost_writes += abs(report.final_keys - len(shadow))
            status = index.status()
            for shard in status["shards"]:
                rung = shard.get("rung")
                if shard.get("health") not in (None, "healthy") or (
                    rung is not None and rung >= 4
                ):
                    report.events.append(
                        f"unhealthy shard after chaos: {shard}"
                    )
    finally:
        if own_dir:
            tmp.cleanup()
    return report


# ----------------------------------------------------------------------
# Supervision chaos: hangs, slow workers, crash loops (ISSUE 10)
# ----------------------------------------------------------------------


@dataclass
class SupervisionChaosReport:
    """Outcome of one :func:`run_supervision_chaos` schedule."""

    seed: int
    reads: int = 0
    wrong_reads: int = 0
    partial_reads: int = 0
    unavailable_marks: int = 0
    misreported_unavailability: int = 0
    kills: int = 0
    restarts: int = 0
    hang_recovery_seconds: float = 0.0
    hung_replaced_within_deadline: bool = False
    slow_worker_survived: bool = False
    breaker_tripped_within_budget: bool = False
    failures_at_trip: int = 0
    write_rejected_retryable: bool = False
    healthy_shards_kept_serving: bool = False
    healed: bool = False
    final_health: str = ""
    events: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            self.wrong_reads == 0
            and self.misreported_unavailability == 0
            and self.hung_replaced_within_deadline
            and self.slow_worker_survived
            and self.breaker_tripped_within_budget
            and self.write_rejected_retryable
            and self.healthy_shards_kept_serving
            and self.healed
            and self.final_health == "healthy"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "reads": self.reads,
            "wrong_reads": self.wrong_reads,
            "partial_reads": self.partial_reads,
            "unavailable_marks": self.unavailable_marks,
            "misreported_unavailability": self.misreported_unavailability,
            "kills": self.kills,
            "restarts": self.restarts,
            "hang_recovery_seconds": round(self.hang_recovery_seconds, 3),
            "hung_replaced_within_deadline":
                self.hung_replaced_within_deadline,
            "slow_worker_survived": self.slow_worker_survived,
            "breaker_tripped_within_budget":
                self.breaker_tripped_within_budget,
            "failures_at_trip": self.failures_at_trip,
            "write_rejected_retryable": self.write_rejected_retryable,
            "healthy_shards_kept_serving": self.healthy_shards_kept_serving,
            "healed": self.healed,
            "final_health": self.final_health,
            "clean": self.clean,
        }


def poison_shard_dir(dirpath, name: str) -> str:
    """Crash-loop injector: replace a shard directory with a plain file.

    Every restarted worker then dies at startup (``DurableDILI``'s
    ``os.makedirs`` finds a non-directory in the way), which is the
    crash-loop signature the circuit breaker must contain.  Returns
    the quarantine path holding the real directory; undo with
    :func:`heal_shard_dir`.
    """
    shard_dir = os.path.join(os.fspath(dirpath), name)
    quarantine = shard_dir + ".quarantine"
    os.rename(shard_dir, quarantine)
    with open(shard_dir, "w", encoding="utf-8") as fh:
        fh.write("poisoned by run_supervision_chaos\n")
    return quarantine


def heal_shard_dir(dirpath, name: str) -> None:
    """Undo :func:`poison_shard_dir`: restore the real shard directory."""
    shard_dir = os.path.join(os.fspath(dirpath), name)
    os.remove(shard_dir)
    os.rename(shard_dir + ".quarantine", shard_dir)


def _wait_until(predicate, timeout: float, interval: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _worker_pid(index: ShardedDILI, shard: int):
    return index.status()["shards"][shard].get("pid")


def _audit_supervised(
    index: ShardedDILI,
    queries: np.ndarray,
    shadow: dict,
    report: SupervisionChaosReport,
    *,
    unavailable_shard: int | None = None,
) -> None:
    """Audit one batch read against the shadow dict.

    With ``unavailable_shard`` set the read runs in partial mode and
    the audit demands *exact* per-key unavailability: every key routed
    to that shard comes back :data:`UNAVAILABLE`, every other key
    comes back with its shadow value -- no false unavailability, no
    silently wrong values.
    """
    report.reads += len(queries)
    if unavailable_shard is None:
        got = index.get_batch(queries)
        for key, value in zip(queries.tolist(), got):
            if value != shadow.get(key):
                report.wrong_reads += 1
        return
    report.partial_reads += 1
    expected_down = index.router.route(queries) == unavailable_shard
    got = index.get_batch(queries, partial=True)
    for key, value, down in zip(
        queries.tolist(), got, expected_down.tolist()
    ):
        if down:
            if value is UNAVAILABLE:
                report.unavailable_marks += 1
            else:
                report.misreported_unavailability += 1
        elif value is UNAVAILABLE:
            report.misreported_unavailability += 1
        elif value != shadow.get(key):
            report.wrong_reads += 1


def run_supervision_chaos(
    *,
    num_shards: int = 3,
    num_keys: int = 1_200,
    batch: int = 240,
    seed: int = 0,
    request_timeout: float = 4.0,
    heartbeat_interval: float = 0.1,
    hang_timeout: float = 0.8,
    probe_interval: float = 0.1,
    slow_delay: float = 0.25,
    dirpath=None,
) -> SupervisionChaosReport:
    """Drive the fleet through every supervised failure mode; audit all.

    The seeded schedule mixes the four injectors and asserts the
    ISSUE 10 contract phase by phase:

    1. **baseline** -- audited reads on a healthy fleet.
    2. **SIGKILL** -- one worker killed; the next request restarts it
       transparently (the PR 8 contract still holds under
       supervision).
    3. **hang (SIGSTOP)** -- the worker stays alive but heartbeats
       stop; a full-fleet batch read must complete *within one request
       deadline* because the supervisor escalates poll -> SIGTERM ->
       SIGKILL -> restart mid-request.
    4. **slow** -- injected serving delay with heartbeats flowing.
       Under the deadline the read just succeeds; over the deadline a
       partial-mode read marks exactly the slow shard's keys
       :data:`UNAVAILABLE` -- and the worker is *not* killed (slow is
       not hung).
    5. **crash loop** -- the shard directory is poisoned so every
       restart dies at startup; the breaker must trip within the
       restart budget, writes to the shard must be rejected with a
       *typed, retryable* error, and the healthy shards must keep
       serving (fail-fast on their keys, partial over the full
       keyspace).
    6. **heal** -- the poison is removed; the background probe's
       HALF_OPEN restart must close the breaker and return the fleet
       to HEALTHY with zero wrong reads on the full keyspace.
    """
    if num_shards < 3:
        raise ValueError("supervision chaos needs >= 3 shards")
    rng = np.random.default_rng(seed)
    report = SupervisionChaosReport(seed=seed)
    policy = RestartPolicy(
        backoff_base=0.05,
        backoff_factor=2.0,
        backoff_cap=0.5,
        budget=2,
        cooldown=2.5,
        probe_timeout=5.0,
        term_grace=0.5,
    )
    keys = np.unique(rng.integers(0, 10_000_000, size=num_keys)).astype(
        np.float64
    )
    values = [int(k) * 3 for k in keys]
    shadow = dict(zip(keys.tolist(), values))
    own_dir = dirpath is None
    if own_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-supervision-chaos-")
        dirpath = tmp.name

    def draw_queries() -> np.ndarray:
        hits = rng.choice(keys, size=batch // 2, replace=True)
        misses = rng.uniform(0, 30_000_000, size=batch // 2)
        queries = np.concatenate((hits, misses))
        rng.shuffle(queries)
        return queries

    try:
        with ShardedDILI.create(
            dirpath,
            keys,
            values,
            num_shards=num_shards,
            partition="range",
            tuning="local",
            processes=True,
            sync=False,
            request_timeout=request_timeout,
            heartbeat_interval=heartbeat_interval,
            hang_timeout=hang_timeout,
            policy=policy,
            probe_interval=probe_interval,
        ) as index:
            victims = rng.permutation(num_shards)
            hang_victim = int(victims[0])
            slow_victim = int(victims[1])
            crash_victim = int(victims[2])

            # Phase 1: baseline.
            _audit_supervised(index, draw_queries(), shadow, report)
            report.events.append("baseline audit clean")

            # Phase 2: plain SIGKILL -- restart stays transparent.
            kill_victim = int(rng.integers(0, num_shards))
            index.kill_worker(kill_victim)
            report.kills += 1
            _audit_supervised(index, draw_queries(), shadow, report)
            report.events.append(f"SIGKILL worker {kill_victim}: served on")

            # Phase 3: hang.  SIGSTOP stops heartbeats but not the
            # process; the in-request escalation must replace it within
            # one deadline.
            old_pid = _worker_pid(index, hang_victim)
            index.pause_worker(hang_victim)
            report.kills += 1
            started = time.monotonic()
            _audit_supervised(index, draw_queries(), shadow, report)
            report.hang_recovery_seconds = time.monotonic() - started
            replaced = _wait_until(
                lambda: _worker_pid(index, hang_victim) not in (None, old_pid),
                timeout=request_timeout,
            )
            report.hung_replaced_within_deadline = (
                replaced
                and report.hang_recovery_seconds <= request_timeout + 0.5
            )
            report.events.append(
                f"SIGSTOP worker {hang_victim}: replaced in "
                f"{report.hang_recovery_seconds:.2f}s"
            )

            # Phase 4a: slow under the deadline -- reads just succeed.
            slow_pid = _worker_pid(index, slow_victim)
            index.set_worker_delay(slow_victim, slow_delay)
            _audit_supervised(index, draw_queries(), shadow, report)

            # Phase 4b: slow over the deadline -- partial mode marks
            # exactly the slow shard's keys, and the worker survives
            # (heartbeats kept flowing, so it was never "hung").
            over_delay = request_timeout + 1.5
            index.set_worker_delay(slow_victim, over_delay)
            _audit_supervised(
                index, draw_queries(), shadow, report,
                unavailable_shard=slow_victim,
            )
            index.set_worker_delay(slow_victim, 0.0)
            report.slow_worker_survived = (
                _worker_pid(index, slow_victim) == slow_pid
            )
            _audit_supervised(index, draw_queries(), shadow, report)
            report.events.append(
                f"slow worker {slow_victim}: survived={report.slow_worker_survived}"
            )

            # Phase 5: crash loop.  Poison the shard directory, kill
            # the worker; the background probe's restarts all die at
            # startup and must trip the breaker within the budget.
            crash_name = index.manifest.shards[crash_victim].name
            poison_shard_dir(dirpath, crash_name)
            index.kill_worker(crash_victim)
            report.kills += 1
            ledger = index.supervisor.ledger(crash_victim)
            _wait_until(
                lambda: ledger.breaker.state is BreakerState.OPEN,
                timeout=request_timeout + policy.budget,
            )
            report.failures_at_trip = ledger.consecutive_failures
            report.breaker_tripped_within_budget = (
                ledger.breaker.state is BreakerState.OPEN
                and ledger.consecutive_failures <= policy.budget
            )
            report.events.append(
                f"crash loop {crash_name}: breaker "
                f"{ledger.breaker.state.value} after "
                f"{ledger.consecutive_failures} failures"
            )

            # Writes to the isolated shard: typed, retryable rejection
            # with no side effects.
            target = keys[index.router.route(keys) == crash_victim][:8]
            if len(target):
                try:
                    index.update_batch(
                        target, [int(k) * 7 for k in target]
                    )
                except ShardUnavailableError as exc:
                    report.write_rejected_retryable = bool(
                        getattr(exc, "retryable", False)
                    )
                except Exception as exc:  # cooldown raced: not typed
                    report.events.append(f"write rejection raced: {exc!r}")

            # Healthy shards keep serving: fail-fast on their keys,
            # partial with exact unavailability over the full keyspace.
            queries = draw_queries()
            healthy = queries[index.router.route(queries) != crash_victim]
            before_wrong = report.wrong_reads
            _audit_supervised(index, healthy, shadow, report)
            _audit_supervised(
                index, draw_queries(), shadow, report,
                unavailable_shard=crash_victim,
            )
            report.healthy_shards_kept_serving = (
                report.wrong_reads == before_wrong
                and report.misreported_unavailability == 0
            )

            # Phase 6: heal.  The next HALF_OPEN probe restart succeeds,
            # closes the breaker, and the fleet returns to HEALTHY.
            heal_shard_dir(dirpath, crash_name)
            report.healed = _wait_until(
                lambda: ledger.up and ledger.breaker.closed,
                timeout=4.0 * policy.cooldown,
            )
            if report.healed and len(target):
                # The previously rejected write now lands.
                index.update_batch(target, [int(k) * 7 for k in target])
                for key in target.tolist():
                    shadow[key] = int(key) * 7
            all_keys = np.asarray(sorted(shadow), dtype=np.float64)
            _audit_supervised(
                index, all_keys, shadow, report,
                unavailable_shard=None if report.healed else crash_victim,
            )
            status = index.status()
            report.restarts = index.restarts
            report.final_health = status["health"]
            report.events.append(
                f"healed: health={report.final_health} "
                f"open_breakers={status['open_breakers']}"
            )
    finally:
        if own_dir:
            tmp.cleanup()
    return report
