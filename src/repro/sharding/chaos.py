"""Chaos harness for sharded serving: kills, rebalances, zero wrong reads.

Drives a real multi-process :class:`~repro.sharding.coordinator.ShardedDILI`
through a scripted schedule of batch reads and writes while SIGKILLing
workers -- including one killed *mid-rebalance*, between the moment the
replacement shard directories are fully built and the atomic router
swap -- and audits every single read against a shadow dict.  The
contract under test is the ISSUE 8 acceptance line: **zero wrong
reads**, surviving shards keep serving, and every dead worker restarts
from its shard directory via the PR 6 fallback ladder (the restarted
worker must come back serving a published plan generation, not a
degraded stub).

Deterministic: all scheduling flows from one seeded RNG, so a failure
reproduces from its seed.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.sharding.coordinator import ShardedDILI


@dataclass
class ShardChaosReport:
    """What happened, and whether serving stayed correct."""

    seed: int
    rounds: int = 0
    reads: int = 0
    wrong_reads: int = 0
    writes: int = 0
    lost_writes: int = 0
    kills: int = 0
    restarts: int = 0
    rebalances: int = 0
    mid_rebalance_kills: int = 0
    final_shards: int = 0
    final_keys: int = 0
    events: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.wrong_reads == 0 and self.lost_writes == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "reads": self.reads,
            "wrong_reads": self.wrong_reads,
            "writes": self.writes,
            "lost_writes": self.lost_writes,
            "kills": self.kills,
            "restarts": self.restarts,
            "rebalances": self.rebalances,
            "mid_rebalance_kills": self.mid_rebalance_kills,
            "final_shards": self.final_shards,
            "final_keys": self.final_keys,
            "clean": self.clean,
        }


def _audit_reads(
    index: ShardedDILI,
    queries: np.ndarray,
    shadow: dict,
    report: ShardChaosReport,
) -> None:
    got = index.get_batch(queries)
    report.reads += len(queries)
    for key, value in zip(queries.tolist(), got):
        if value != shadow.get(key):
            report.wrong_reads += 1


def run_shard_chaos(
    *,
    num_shards: int = 4,
    num_keys: int = 2_000,
    rounds: int = 6,
    batch: int = 256,
    seed: int = 0,
    kill_every: int = 2,
    rebalance_round: int = 3,
    dirpath=None,
    processes: bool = True,
) -> ShardChaosReport:
    """Serve under fire; return the audit.

    Schedule per round: audit a read batch (existing + absent keys),
    apply an insert + delete batch, audit again.  Every
    ``kill_every``-th round SIGKILLs a random worker right before the
    read audit (the next request finds the corpse, restarts it from
    its shard directory, and retries).  On ``rebalance_round`` the
    busiest shard is split with a worker kill injected *between* the
    build of the replacement directories and the atomic swap.
    """
    rng = np.random.default_rng(seed)
    report = ShardChaosReport(seed=seed)
    keys = np.unique(rng.integers(0, 10_000_000, size=num_keys)).astype(
        np.float64
    )
    values = [int(k) * 3 for k in keys]
    shadow = dict(zip(keys.tolist(), values))
    own_dir = dirpath is None
    if own_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-chaos-")
        dirpath = tmp.name
    next_fresh = 20_000_000  # insert keys disjoint from the loaded range
    try:
        with ShardedDILI.create(
            dirpath,
            keys,
            values,
            num_shards=num_shards,
            partition="range",
            tuning="local",
            processes=processes,
            sync=False,
        ) as index:
            for round_no in range(rounds):
                report.rounds = round_no + 1
                if kill_every and round_no % kill_every == 1:
                    victim = int(rng.integers(0, index.num_shards))
                    index.kill_worker(victim)
                    report.kills += 1
                    report.events.append(
                        f"round {round_no}: killed worker {victim}"
                    )
                hits = rng.choice(keys, size=batch // 2, replace=True)
                misses = rng.uniform(0, 30_000_000, size=batch // 2)
                queries = np.concatenate((hits, misses))
                rng.shuffle(queries)
                _audit_reads(index, queries, shadow, report)

                fresh = np.arange(
                    next_fresh, next_fresh + batch // 4, dtype=np.float64
                )
                next_fresh += batch // 4
                inserted = index.insert_batch(fresh, [int(k) for k in fresh])
                report.writes += len(fresh)
                for key, ok in zip(fresh.tolist(), inserted.tolist()):
                    shadow[key] = int(key)
                    if not ok:
                        report.lost_writes += 1
                doomed = rng.choice(keys, size=batch // 8, replace=False)
                index.delete_batch(doomed)
                report.writes += len(doomed)
                for key in doomed.tolist():
                    shadow.pop(key, None)
                keys = np.asarray(
                    sorted(set(keys.tolist()) - set(doomed.tolist())),
                    dtype=np.float64,
                )

                if round_no == rebalance_round and index.num_shards > 1:
                    busiest = int(np.argmax(index.ops_counts))
                    victim = (busiest + 1) % index.num_shards

                    def mid_kill() -> None:
                        index.kill_worker(victim)
                        report.kills += 1
                        report.mid_rebalance_kills += 1
                        report.events.append(
                            f"round {round_no}: killed worker {victim} "
                            f"mid-rebalance of shard {busiest}"
                        )

                    index.split_shard(busiest, mid_hook=mid_kill)
                    report.events.append(
                        f"round {round_no}: split shard {busiest}"
                    )
                _audit_reads(index, queries, shadow, report)

            # Closing audit: every surviving key, plus worker health.
            all_keys = np.asarray(sorted(shadow), dtype=np.float64)
            _audit_reads(index, all_keys, shadow, report)
            report.restarts = index.restarts
            report.rebalances = index.rebalances
            report.final_shards = index.num_shards
            report.final_keys = len(index)
            if report.final_keys != len(shadow):
                report.lost_writes += abs(report.final_keys - len(shadow))
            status = index.status()
            for shard in status["shards"]:
                rung = shard.get("rung")
                if shard.get("health") not in (None, "healthy") or (
                    rung is not None and rung >= 4
                ):
                    report.events.append(
                        f"unhealthy shard after chaos: {shard}"
                    )
    finally:
        if own_dir:
            tmp.cleanup()
    return report
