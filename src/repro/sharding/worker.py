"""The shard worker: one process, one shard, served from its plan dir.

A worker owns exactly one shard directory -- a standard
:class:`~repro.durability.durable.DurableDILI` state dir.  It is the
**only** place in the sharding layer allowed to touch index state, and
it does so exclusively through the durability/planstore APIs (lint
rule CHK009 enforces this): recovery and logged writes go through
``DurableDILI``, reads are served zero-copy from the published plan
via :class:`~repro.planstore.serve.MmapDILI` (the PR 6 fallback
ladder), and every write batch republishes a WAL-tail delta -- or a
fresh base generation once the tail grows past
``republish_threshold`` -- so the mmap handle stays current.

The same :class:`ShardWorker` object serves two transports:

* :func:`worker_main` runs it as a dedicated *process* behind a
  ``multiprocessing`` pipe -- the GIL-escaping path.
* The coordinator can also drive it in-process (``processes=False``),
  which the property-based tests use to avoid per-example process
  spawns.

Traced reads ship their simulated cost back to the coordinator as
:class:`~repro.simulate.tracer.RecordingTracer` event tuples, split
into per-key segments on the ``step1`` phase marker each key's replay
begins with.  The coordinator reorders the segments into input order
and replays them into the caller's tracer, so the (stateful, LRU
cache-simulating) cost accounting sees exactly the event stream an
unsharded index would have produced.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core.dili import DiliConfig
from repro.durability.durable import DurableDILI
from repro.planstore.serve import PlanDirectory
from repro.sharding.supervision import HEARTBEAT_RID, STARTUP_RID
from repro.simulate.tracer import NULL_TRACER, RecordingTracer

#: WAL-tail ops accumulated before a write republishes a base
#: generation instead of another delta.
REPUBLISH_THRESHOLD = 4096

#: Seconds between worker heartbeat frames (0 disables them).
HEARTBEAT_INTERVAL = 0.5

#: Verbs the chaos ``set_delay`` injector slows down.  Liveness verbs
#: (``ping``, ``status``, ``set_delay`` itself) stay fast so probes and
#: injector cleanup are never behind the injected latency.
_DELAYABLE = frozenset(
    {
        "get_batch",
        "contains_batch",
        "count_range_batch",
        "insert_batch",
        "delete_batch",
        "update_batch",
        "items",
    }
)


def split_trace_segments(events: list, n: int) -> list:
    """Split a recorded event stream into ``n`` per-key segments.

    Every key replayed by the flat plan opens with a
    ``("step1", ...)`` phase marker, so segment boundaries are exactly
    the marker positions.  An empty index records no events at all for
    a batch; that is ``n`` empty segments, not an error.
    """
    if n == 0:
        return []
    if not events:
        return [[] for _ in range(n)]
    phase = RecordingTracer._PHASE
    starts = [
        i
        for i, (kind, name, _) in enumerate(events)
        if kind == phase and name == "step1"
    ]
    if len(starts) != n or starts[0] != 0:
        raise ValueError(
            f"cannot segment trace: {len(starts)} step1 markers "
            f"for {n} keys"
        )
    starts.append(len(events))
    return [events[starts[i]:starts[i + 1]] for i in range(n)]


def replay_segment(events: list, tracer) -> None:
    """Replay one per-key event segment into ``tracer``."""
    mem = RecordingTracer._MEM
    compute = RecordingTracer._COMPUTE
    for kind, a, b in events:
        if kind == mem:
            tracer.mem(a, b)
        elif kind == compute:
            tracer.compute(a)
        else:
            tracer.phase(a)


class ShardWorker:
    """Serves one shard directory through durability/planstore APIs.

    Args:
        dirpath: The shard's DurableDILI state directory.
        serve: ``"mmap"`` reads from the published plan via the
            fallback ladder (zero-copy, the production path);
            ``"live"`` reads from the recovered in-memory index
            (used by trace-parity tests that need exactness across
            writes, where the mmap overlay is documented-approximate).
        config: Config for a fresh index when the directory is empty.
        sync: fsync the WAL on every append (see DurableDILI).
        republish_threshold: WAL-tail ops before a write publishes a
            new base generation instead of a delta.
    """

    def __init__(
        self,
        dirpath,
        *,
        serve: str = "mmap",
        config: DiliConfig | None = None,
        sync: bool = True,
        republish_threshold: int = REPUBLISH_THRESHOLD,
    ) -> None:
        if serve not in ("mmap", "live"):
            raise ValueError(f"unknown serve mode {serve!r}")
        self.dirpath = os.fspath(dirpath)
        self.serve = serve
        self.republish_threshold = republish_threshold
        self.durable = DurableDILI(self.dirpath, config=config, sync=sync)
        self.ops = {
            "reads": 0,
            "writes": 0,
            "batches": 0,
            "republishes": 0,
        }
        self._tail_ops = 0
        self._delay = 0.0
        self.served = None
        self._ensure_published()
        self._reopen_served()

    # ------------------------------------------------------------------
    # Serving-handle maintenance
    # ------------------------------------------------------------------

    def _ensure_published(self) -> None:
        """Publish a first base generation for a non-empty shard."""
        plans = PlanDirectory.for_state_dir(self.dirpath)
        if self.durable.index.root is None or plans.generations():
            return
        self.durable.publish_plan()

    def _reopen_served(self) -> None:
        if self.served is not None:
            self.served.close()
            self.served = None
        if self.serve == "mmap":
            self.served = self.durable.serve_mmap()

    def _after_write(self, n: int) -> None:
        self.ops["writes"] += n
        self._tail_ops += n
        plans = PlanDirectory.for_state_dir(self.dirpath)
        if self.durable.index.root is not None:
            if (
                not plans.generations()
                or self._tail_ops >= self.republish_threshold
            ):
                self.durable.publish_plan()
                self.ops["republishes"] += 1
                self._tail_ops = 0
            else:
                self.durable.publish_tail()
        self._reopen_served()

    def _read_target(self):
        if self.served is not None:
            return self.served
        return self.durable.index

    # ------------------------------------------------------------------
    # Request handlers (the wire protocol's verbs)
    # ------------------------------------------------------------------

    def get_batch(self, keys, record: bool = False):
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        self.ops["reads"] += len(keys)
        self.ops["batches"] += 1
        tracer = RecordingTracer() if record else NULL_TRACER
        values = self._read_target().get_batch(keys, tracer)
        segments = (
            split_trace_segments(tracer.events, len(keys)) if record else None
        )
        return list(values), segments

    def contains_batch(self, keys):
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        self.ops["reads"] += len(keys)
        self.ops["batches"] += 1
        return np.asarray(self._read_target().contains_batch(keys))

    def count_range_batch(self, los, his):
        self.ops["reads"] += len(los)
        self.ops["batches"] += 1
        return np.asarray(self._read_target().count_range_batch(los, his))

    def insert_batch(self, keys, values=None):
        out = self.durable.insert_batch(keys, values)
        self._after_write(len(out))
        return np.asarray(out)

    def delete_batch(self, keys):
        out = self.durable.delete_batch(keys)
        self._after_write(len(out))
        return np.asarray(out)

    def update_batch(self, keys, values):
        out = self.durable.update_batch(keys, values)
        self._after_write(len(out))
        return np.asarray(out)

    def items(self) -> list:
        """Every (key, value) pair, sorted -- the rebalance feed."""
        return list(self.durable.items())

    def first_key(self) -> float | None:
        """Smallest stored key (None when empty); feeds the
        aligned-to-range router conversion before a rebalance."""
        for key, _ in self.durable.items():
            return float(key)
        return None

    def status(self) -> dict:
        plans = PlanDirectory.for_state_dir(self.dirpath)
        generations = plans.generations()
        served = self.served
        return {
            "pid": os.getpid(),
            "dir": self.dirpath,
            "keys": len(self.durable),
            "serve": self.serve,
            "generations": generations,
            "generation": served.generation if served is not None else None,
            "rung": served.rung if served is not None else None,
            "health": (
                served.health.state.value if served is not None else "healthy"
            ),
            "wal_lsn": self.durable.wal.last_seqno,
            "ops": dict(self.ops),
        }

    def __len__(self) -> int:
        return len(self.durable)

    def ping(self) -> str:
        return "pong"

    def set_delay(self, seconds: float) -> float:
        """Chaos injector: sleep before every serving verb.

        Models a slow-but-alive worker (cold page cache, noisy
        neighbour).  The worker keeps heartbeating, so the supervisor
        must *not* kill it -- callers see a retryable
        ``DeadlineExceeded`` (or per-key unavailability in partial
        mode) when the latency exceeds their budget.
        """
        self._delay = max(0.0, float(seconds))
        return self._delay

    def publish(self) -> int:
        generation = self.durable.publish_plan()
        self.ops["republishes"] += 1
        self._tail_ops = 0
        self._reopen_served()
        return generation

    def close(self) -> None:
        if self.served is not None:
            self.served.close()
            self.served = None
        self.durable.close()

    def dispatch(self, method: str, args: tuple):
        """Invoke one protocol verb; the transports' single entry."""
        if self._delay and method in _DELAYABLE:
            time.sleep(self._delay)
        if method == "len":
            return len(self)
        if method.startswith("_") or not hasattr(self, method):
            raise ValueError(f"unknown shard-worker method {method!r}")
        return getattr(self, method)(*args)


def _validate_request(frame) -> tuple:
    """Verify a request frame's shape before dispatching on it.

    The pipe hands over whatever the peer pickled; a version-skewed or
    half-dead coordinator can deliver garbage that would otherwise be
    splatted straight into ``getattr`` dispatch.  The frame must be
    ``(req_id: int, method: str, args: tuple)``.
    """
    if (
        not isinstance(frame, tuple)
        or len(frame) != 3
        or isinstance(frame[0], bool)
        or not isinstance(frame[0], int)
        or not isinstance(frame[1], str)
        or not isinstance(frame[2], tuple)
    ):
        raise ValueError(f"malformed request frame: {frame!r}")
    return frame


def worker_main(
    dirpath,
    conn,
    serve: str = "mmap",
    sync: bool = True,
    heartbeat: float = HEARTBEAT_INTERVAL,
) -> None:
    """Process entry point: serve ``dirpath`` over a pipe.

    Protocol: requests are ``(req_id, method, args)``; responses are
    ``(req_id, ok, payload)`` where a failed call carries
    ``(exception_type_name, message)``.  ``stop`` acknowledges, closes
    the shard cleanly, and exits; losing the pipe (coordinator death)
    exits too.

    A daemon thread additionally sends a heartbeat frame (req_id
    ``HEARTBEAT_RID``) every ``heartbeat`` seconds.  Heartbeats flow
    even while a verb is sleeping or grinding (the GIL is released in
    both), so the coordinator can tell *slow* (heartbeats arriving:
    leave the worker alone, let the caller's deadline decide) from
    *hung* (SIGSTOP, deadlock: heartbeats stop with the process --
    escalate SIGTERM -> SIGKILL -> restart).  Both threads share one
    send lock so frames never interleave on the pipe.
    """
    send_lock = threading.Lock()

    def _send(frame) -> None:
        with send_lock:
            conn.send(frame)

    try:
        worker = ShardWorker(dirpath, serve=serve, sync=sync)
    except Exception as exc:  # startup failure must reach the coordinator
        try:
            _send((STARTUP_RID, False, (type(exc).__name__, str(exc))))
        except (OSError, BrokenPipeError):
            pass
        return
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(heartbeat):
            try:
                _send((HEARTBEAT_RID, True, None))
            except (OSError, BrokenPipeError):
                return

    if heartbeat > 0:
        threading.Thread(
            target=_beat, name="shard-heartbeat", daemon=True
        ).start()
    try:
        while True:
            try:
                # The worker's whole job is to wait for its
                # coordinator; liveness is the heartbeat thread's
                # problem, so this receive may block forever.
                req_id, method, args = _validate_request(
                    conn.recv()  # repro-check: allow CHK014 -- worker request loop blocks for its coordinator by design
                )
            except (EOFError, OSError):
                break
            except ValueError:
                # A peer not speaking our frames is as dead as a
                # broken pipe; there is no req_id to answer on.
                break
            if method == "stop":
                _send((req_id, True, None))
                break
            try:
                result = (
                    len(worker) if method == "len"
                    else worker.dispatch(method, args)
                )
                _send((req_id, True, result))
            except Exception as exc:
                try:
                    _send((req_id, False, (type(exc).__name__, str(exc))))
                except (OSError, BrokenPipeError):
                    break
    finally:
        stop_beating.set()
        worker.close()
