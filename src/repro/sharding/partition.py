"""Partition planning and per-shard distribution tuning.

Two ways to cut the keyspace into contiguous range shards:

* :func:`build_range_shards` -- quantile (equal-count) partitions,
  each shard independently bulk-loaded.  With ``tuning="local"`` every
  shard's bulk-load cost parameters are fit to its *local* key density
  by :func:`fit_shard_config` (a small grid search scored with the
  simulated cost model on a sampled local CDF), so a uniform shard and
  a clustered shard get different fanout/leaf decisions -- the
  heterogeneous-per-shard thesis from "Unlocking the Power of
  Diversity in Index Tuning" applied to DILI's cost model.

* :func:`split_aligned` -- split ONE globally bulk-loaded tree at the
  root's children.  Every shard's root is a clone of the global root
  (same region id, same Eq.1 slope/intercept, same child count) whose
  non-owned child slots hold empty placeholder leaves built with the
  exact empty-range recipe from
  :mod:`repro.core.bulk_load` (``_EMPTY_LEAF_FANOUT`` +
  ``LinearModel.from_range``).  Because pickling preserves region ids
  and the clone preserves every slot offset, a key routed to its
  owning shard produces the *same simulated event stream* as the
  global tree -- the foundation of the coordinator's ±0 trace-parity
  guarantee.  Internal nodes are immutable after bulk load and all
  structural mutation happens inside top-level leaves (each owned by
  exactly one shard), so the alignment survives writes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.bulk_load import _EMPTY_LEAF_FANOUT
from repro.core.dili import DILI, DiliConfig
from repro.core.linear_model import LinearModel
from repro.core.local_opt import local_opt
from repro.core.nodes import InternalNode, LeafNode
from repro.sharding.router import AlignedRouter, ShardRouter
from repro.simulate.tracer import CacheSimulator, CostTracer

# (omega, rho) grid for the per-shard search.  Small omegas favour
# clustered regions (shorter last-mile search inside mispredicted
# leaves), large omegas favour near-linear regions (shallower trees,
# fewer internal hops); rho shifts how aggressively the BU cost model
# discounts deep levels.
CANDIDATE_GRID: tuple[tuple[int, float], ...] = (
    (512, 0.2),
    (1024, 0.2),
    (4096, 0.2),
    (1024, 0.4),
    (4096, 0.1),
)

#: Grid-search probe size cap; probes above this subsample uniformly.
PROBE_CAP = 20_000


@dataclass(frozen=True)
class ShardSpec:
    """One planned range shard: its data slice and chosen config."""

    keys: np.ndarray
    values: list
    config: DiliConfig
    probe_cycles: float  # simulated cycles/op of the winning probe


@dataclass(frozen=True)
class RangePartition:
    router: ShardRouter
    shards: list  # list[ShardSpec]
    tuning: str


@dataclass(frozen=True)
class AlignedShard:
    """One aligned shard: a masked clone of the global tree."""

    index: DILI
    count: int


@dataclass(frozen=True)
class AlignedPartition:
    router: AlignedRouter
    shards: list  # list[AlignedShard]
    global_index: DILI


def _check_sorted_unique(keys: np.ndarray) -> np.ndarray:
    keys = np.ascontiguousarray(keys, dtype=np.float64)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if len(keys) > 1 and np.any(np.diff(keys) <= 0):
        raise ValueError("keys must be sorted and unique")
    return keys


def quantile_boundaries(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Interior boundaries (first key of shards 1..S-1), equal-count.

    With fewer keys than shards the tail boundaries repeat the last
    key, which makes the surplus shards empty -- the router handles
    duplicate boundaries by construction.
    """
    keys = _check_sorted_unique(keys)
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = len(keys)
    if n == 0:
        return np.arange(1, num_shards, dtype=np.float64)
    idx = np.minimum(
        (np.arange(1, num_shards) * n) // num_shards, n - 1
    )
    return keys[idx].astype(np.float64)


def sample_keys(keys: np.ndarray, cap: int) -> np.ndarray:
    """Uniform-stride subsample preserving the local CDF shape."""
    n = len(keys)
    if n <= cap:
        return keys
    idx = np.linspace(0, n - 1, num=cap).astype(np.int64)
    return keys[np.unique(idx)]


def fit_shard_config(
    keys: np.ndarray,
    *,
    base: DiliConfig | None = None,
    probe_cap: int = PROBE_CAP,
    num_queries: int = 2048,
    seed: int = 0,
) -> tuple[DiliConfig, float]:
    """Choose bulk-load parameters for one shard's local distribution.

    Grid search over :data:`CANDIDATE_GRID`: bulk-load a stride sample
    of the shard's keys under each candidate, probe it with random
    existing-key lookups under a :class:`CostTracer`, and keep the
    config with the lowest simulated cycles per op (first wins ties,
    so the search is deterministic).  Returns ``(config, cycles/op)``.
    """
    base = base if base is not None else DiliConfig()
    keys = _check_sorted_unique(keys)
    if len(keys) < 16:
        return base, 0.0
    probe = sample_keys(keys, probe_cap)
    rng = np.random.default_rng(seed)
    queries = probe[rng.integers(0, len(probe), size=num_queries)]
    cache_lines = max(512, len(probe) // 100)
    best: tuple[float, DiliConfig] | None = None
    for omega, rho in CANDIDATE_GRID:
        config = replace(base, omega=omega, rho=rho)
        index = DILI(config)
        index.bulk_load(probe)
        tracer = CostTracer(CacheSimulator(cache_lines))
        index.get_batch(queries, tracer)
        score = tracer.total_cycles / len(queries)
        if best is None or score < best[0]:
            best = (score, config)
    return best[1], best[0]


def build_range_shards(
    keys: np.ndarray,
    values: list | None,
    num_shards: int,
    *,
    tuning: str = "local",
    base: DiliConfig | None = None,
    seed: int = 0,
) -> RangePartition:
    """Plan quantile range shards with per-shard (or global) tuning.

    Args:
        keys: Sorted unique float64 keys.
        values: Payloads (defaults to key positions).
        num_shards: Shard count.
        tuning: ``"local"`` fits each shard's config to its local CDF;
            ``"global"`` runs the same grid search once over the whole
            key set and reuses the winner everywhere (the fair
            one-global-configuration baseline); ``"none"`` uses
            ``base`` as-is.
        base: Base config the grid search perturbs.
        seed: Probe RNG seed.
    """
    keys = _check_sorted_unique(keys)
    if values is None:
        values = list(range(len(keys)))
    if len(values) != len(keys):
        raise ValueError("values must match keys in length")
    if tuning not in ("local", "global", "none"):
        raise ValueError(f"unknown tuning mode {tuning!r}")
    base = base if base is not None else DiliConfig()
    boundaries = quantile_boundaries(keys, num_shards)
    router = ShardRouter(boundaries, num_shards)
    cuts = np.concatenate(
        ([0], np.searchsorted(keys, boundaries, side="left"), [len(keys)])
    ).astype(np.int64)
    global_config, global_cost = (base, 0.0)
    if tuning == "global":
        global_config, global_cost = fit_shard_config(
            keys, base=base, seed=seed
        )
    shards: list[ShardSpec] = []
    for j in range(num_shards):
        lo, hi = int(cuts[j]), int(cuts[j + 1])
        shard_keys = keys[lo:hi]
        shard_values = list(values[lo:hi])
        if tuning == "local":
            config, cost = fit_shard_config(
                shard_keys, base=base, seed=seed + j
            )
        else:
            config, cost = global_config, global_cost
        shards.append(ShardSpec(shard_keys, shard_values, config, cost))
    return RangePartition(router=router, shards=shards, tuning=tuning)


def _placeholder_leaf(lb: float, ub: float, config: DiliConfig) -> LeafNode:
    """An empty leaf exactly as bulk load builds one for a bare range."""
    leaf = LeafNode(lb, ub)
    local_opt(
        leaf,
        [],
        enlarge=config.enlarge,
        fanout=_EMPTY_LEAF_FANOUT,
        model=LinearModel.from_range(lb, ub, _EMPTY_LEAF_FANOUT),
    )
    return leaf


def _masked_root(
    root: InternalNode, start: int, end: int, config: DiliConfig
) -> InternalNode:
    """Clone ``root`` keeping children [start, end), masking the rest.

    The clone preserves lb/ub/slope/intercept/region and the child
    count, so slot offsets (``64 + idx * 8``) and every routed key's
    event stream match the global tree bit for bit.
    """
    clone = InternalNode.__new__(InternalNode)
    clone.lb = root.lb
    clone.ub = root.ub
    clone.slope = root.slope
    clone.intercept = root.intercept
    clone.region = root.region
    children: list[object] = []
    for i, child in enumerate(root.children):
        if start <= i < end:
            children.append(child)
        else:
            lb, ub = root.child_bounds(i)
            children.append(_placeholder_leaf(lb, ub, config))
    clone.children = children
    return clone


def _group_starts(counts: np.ndarray, num_shards: int) -> list[int]:
    """Contiguous child groups balanced by key count."""
    fanout = len(counts)
    num_shards = min(num_shards, fanout)
    cum = np.cumsum(counts)
    total = int(cum[-1]) if fanout else 0
    starts = [0]
    for j in range(1, num_shards):
        target = total * j / num_shards
        raw = int(np.searchsorted(cum, target, side="left")) + 1
        # Keep starts strictly increasing and leave room for the
        # remaining groups.
        lo = starts[-1] + 1
        hi = fanout - (num_shards - j)
        starts.append(max(lo, min(raw, hi)))
    return starts


def split_aligned(
    keys: np.ndarray,
    values: list | None = None,
    num_shards: int = 2,
    *,
    config: DiliConfig | None = None,
) -> AlignedPartition:
    """Bulk-load one global tree and split it at the root's children.

    The shard count is capped by the root's fanout (and collapses to a
    single shard when the whole tree is one leaf).  Shard ``j`` owns
    the contiguous child group ``[starts[j], starts[j+1])``; its index
    is the global tree with every other child replaced by an empty
    placeholder leaf.
    """
    keys = _check_sorted_unique(keys)
    if values is None:
        values = list(range(len(keys)))
    config = config if config is not None else DiliConfig()
    global_index = DILI(config)
    global_index.bulk_load(keys, list(values))
    root = global_index.root
    if not isinstance(root, InternalNode) or num_shards <= 1:
        router = AlignedRouter(0.0, 0.0, 1, [0])
        return AlignedPartition(
            router=router,
            shards=[AlignedShard(index=global_index, count=len(keys))],
            global_index=global_index,
        )
    fanout = len(root.children)
    # Child membership follows construction exactly: bulk load assigns
    # keys to children by searchsorted on the equal-width child bounds.
    bounds = np.array(
        [root.child_bounds(i)[0] for i in range(fanout)], dtype=np.float64
    )
    edges = np.searchsorted(keys, bounds, side="left").astype(np.int64)
    edges = np.concatenate((edges, [len(keys)]))
    edges[0] = 0  # every key at or below the root lb belongs to child 0
    counts = np.diff(edges)
    starts = _group_starts(counts, num_shards)
    router = AlignedRouter(root.slope, root.intercept, fanout, starts)
    shards: list[AlignedShard] = []
    for j, start in enumerate(starts):
        end = starts[j + 1] if j + 1 < len(starts) else fanout
        count = int(edges[end] - edges[start])
        shard = DILI(config)
        shard.root = _masked_root(root, start, end, config)
        shard._count = count
        shards.append(AlignedShard(index=shard, count=count))
    return AlignedPartition(
        router=router, shards=shards, global_index=global_index
    )
