"""``ShardedDILI``: scatter/gather coordination over shard workers.

The coordinator owns the learned router and the worker handles; it
never touches index state itself (CHK009).  Every batch op routes its
keys, scatters per-shard sub-batches over the worker pipes -- all
sub-requests are in flight simultaneously, which is where the
multi-process parallelism comes from -- and gathers the responses back
into input order via the inverse of the stable scatter permutation.

Guarantees:

* **Order identity**: results come back in input order, exactly as an
  unsharded index would return them.
* **Trace identity** (aligned partitions, read-only): traced
  ``get_batch`` replays the workers' recorded per-key event segments
  into the caller's tracer in input order, so a stateful cost tracer
  (LRU cache simulation included) observes the event stream of the
  equivalent unsharded index, ±0 cycles.  See
  :mod:`repro.sharding.partition`.
* **Worker death is survivable**: a dead worker (broken pipe, kill -9)
  transitions coordinator health HEALTHY -> DEGRADED, is restarted
  from its shard directory -- recovery runs the PR 6 fallback ladder:
  newest published plan, older generation, snapshot+WAL rebuild --
  then health walks REPAIRING -> HEALTHY and the request retries.
  Reads are idempotent; a write retried across a crash is
  at-least-once (the final state is idempotent because the WAL logs
  validated ops, but the returned inserted/deleted flags can
  understate if the first attempt had partially applied).
* **Rebalancing is atomic**: splits and merges build fully published
  replacement shard directories first, then swap the shard table and
  router inside the coordinator lock, then stop the old workers.  A
  reader never observes a half-updated router, and old directories
  are kept on disk, never deleted.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np

from repro.core.dili import DiliConfig
from repro.durability.durable import DurableDILI
from repro.resilience.health import Health, HealthMonitor
from repro.sharding.breaker import RestartPolicy
from repro.sharding.manifest import (
    Manifest,
    ShardEntry,
    read_manifest,
    write_manifest,
)
from repro.sharding.partition import (
    build_range_shards,
    fit_shard_config,
    split_aligned,
)
from repro.sharding.router import ShardRouter, router_from_dict
from repro.sharding.supervision import (
    HEARTBEAT_RID,
    POLL_INTERVAL,
    STARTUP_RID,
    UNAVAILABLE,
    Deadline,
    DeadlineExceeded,
    FleetSupervisor,
    ShardUnavailableError,
    WorkerDied,
    WorkerHung,
    _validate_response,
    drain_stale,
    poll_frame,
    recv_frame,
)
from repro.sharding.worker import (
    HEARTBEAT_INTERVAL,
    ShardWorker,
    replay_segment,
    worker_main,
)
from repro.simulate.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "LocalHandle",
    "ProcessHandle",
    "ShardedDILI",
    "ShardUnavailableError",
    "WorkerDied",
    "WorkerHung",
    "WorkerRemoteError",
]


class WorkerRemoteError(RuntimeError):
    """The worker raised; carries the remote type name and message."""


_REMOTE_TYPES = {
    "ValueError": ValueError,
    "KeyError": KeyError,
    "NotImplementedError": NotImplementedError,
}


def _raise_remote(name: str, message: str):
    exc_type = _REMOTE_TYPES.get(name)
    if exc_type is not None:
        raise exc_type(f"shard worker: {message}")
    raise WorkerRemoteError(f"shard worker {name}: {message}")


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ProcessHandle:
    """One worker process behind a duplex pipe.

    All pipe waits flow through the sanctioned supervision wrappers
    (CHK014), sliced from the caller's :class:`Deadline`, and the
    handle tracks ``last_heard`` -- the monotonic time of the last
    frame (response *or* heartbeat) -- so receives can distinguish a
    *hung* worker (heartbeat-silent past ``hang_timeout``:
    :class:`WorkerHung`, escalate and replace) from a merely *slow*
    one (heartbeats flowing: :class:`DeadlineExceeded`, leave it be).
    """

    def __init__(
        self,
        dirpath,
        *,
        serve: str,
        sync: bool,
        ctx=None,
        heartbeat: float = HEARTBEAT_INTERVAL,
        term_grace: float = 1.0,
    ) -> None:
        self.dirpath = os.fspath(dirpath)
        self.heartbeat = heartbeat
        self.term_grace = term_grace
        ctx = ctx if ctx is not None else _mp_context()
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(self.dirpath, child, serve, sync, heartbeat),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.conn = parent
        self._next_req = 0
        self.last_heard = time.monotonic()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def _note_heard(self) -> None:
        self.last_heard = time.monotonic()

    def send(self, method: str, args: tuple = ()) -> int:
        # Anything buffered before a fresh request id is issued is
        # stale by construction (heartbeats, responses to abandoned
        # requests); draining here keeps a slow worker's heartbeats
        # from filling the pipe between requests.
        drain_stale(self.conn, self.dirpath, on_heartbeat=self._note_heard)
        self._next_req += 1
        rid = self._next_req
        try:
            self.conn.send((rid, method, args))
        except (OSError, BrokenPipeError) as exc:
            raise WorkerDied(
                f"{self.dirpath}: worker pipe is broken: {exc}"
            ) from exc
        return rid

    def recv(
        self,
        rid: int,
        deadline: Deadline | float | None = None,
        hang_timeout: float | None = None,
    ):
        """Wait for response ``rid`` within the request's budget.

        Raises:
            WorkerDied: The process exited (its last frames are
                drained first -- a buffered startup failure surfaces
                as the remote error it reported).
            WorkerHung: Alive but heartbeat-silent past
                ``hang_timeout`` -- the caller should escalate.
            DeadlineExceeded: Budget exhausted while the worker is
                alive and heartbeating -- slow, not hung; retryable.
        """
        if not isinstance(deadline, Deadline):
            deadline = Deadline(deadline)
        while True:
            if poll_frame(
                self.conn, deadline.slice(POLL_INTERVAL), self.dirpath
            ):
                got, ok, payload = recv_frame(self.conn, self.dirpath)
                self._note_heard()
                if got == HEARTBEAT_RID:
                    continue
                if got == STARTUP_RID and not ok:
                    _raise_remote(payload[0], f"startup failed: {payload[1]}")
                if got != rid:
                    continue  # stale response from an abandoned request
                if not ok:
                    _raise_remote(payload[0], payload[1])
                return payload
            if not self.process.is_alive():
                # Drain anything flushed before death.
                if poll_frame(self.conn, 0.0, self.dirpath):
                    continue
                raise WorkerDied(f"{self.dirpath}: worker process exited")
            if (
                hang_timeout is not None
                and self.heartbeat > 0
                and time.monotonic() - self.last_heard > hang_timeout
            ):
                raise WorkerHung(
                    f"{self.dirpath}: no heartbeat for {hang_timeout}s; "
                    f"worker pid {self.pid} presumed hung"
                )
            if deadline.expired:
                raise DeadlineExceeded(
                    f"{self.dirpath}: request {rid} exceeded its "
                    f"{deadline.budget}s deadline budget"
                )

    def call(
        self,
        method: str,
        args: tuple = (),
        deadline: Deadline | float | None = None,
        hang_timeout: float | None = None,
    ):
        return self.recv(self.send(method, args), deadline, hang_timeout)

    def hang_suspected(self, hang_timeout: float) -> bool:
        """Idle-time hang check (no request in flight): drain any
        buffered heartbeats, then judge the silence."""
        if self.heartbeat <= 0 or not self.process.is_alive():
            return False
        drain_stale(self.conn, self.dirpath, on_heartbeat=self._note_heard)
        return time.monotonic() - self.last_heard > hang_timeout

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful, *bounded* shutdown: ask -> join -> TERM -> KILL.

        Every wait is bounded and each escalation rung joins at most
        once, so ``stop`` returns within roughly ``timeout +
        term_grace`` even for a SIGSTOP'd worker (SIGTERM stays
        pending on a stopped process; SIGKILL does not).
        """
        budget = Deadline(timeout)
        try:
            rid = self.send("stop")
            self.recv(rid, deadline=budget)
        except (WorkerDied, WorkerRemoteError, DeadlineExceeded):
            pass
        self.process.join(timeout=budget.slice(timeout))
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=self.term_grace)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def put_down(self, grace: float | None = None) -> None:
        """Hung-worker escalation: SIGTERM -> bounded join -> SIGKILL.

        No goodbye frame: the target is presumed unresponsive (the
        poll already happened -- this *is* the poll -> SIGTERM ->
        SIGKILL ladder's kill end)."""
        grace = self.term_grace if grace is None else grace
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=grace)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        """SIGKILL, no goodbye -- the chaos harness's verb."""
        self.process.kill()
        self.process.join(timeout=10.0)


class LocalHandle:
    """In-process transport: same protocol, no pipe, no process.

    Used by property-based tests (no per-example spawn cost) and by
    ``processes=False`` coordinators.  Never "dies".
    """

    def __init__(self, dirpath, *, serve: str, sync: bool) -> None:
        self.dirpath = os.fspath(dirpath)
        self.worker = ShardWorker(dirpath, serve=serve, sync=sync)
        self._results: dict[int, object] = {}
        self._next_req = 0
        self.heartbeat = 0.0
        self.last_heard = time.monotonic()

    @property
    def pid(self) -> int:
        return os.getpid()

    def alive(self) -> bool:
        return True

    def send(self, method: str, args: tuple = ()) -> int:
        self._next_req += 1
        rid = self._next_req
        self._results[rid] = self.worker.dispatch(method, args)
        return rid

    def recv(self, rid: int, deadline=None, hang_timeout=None):
        return self._results.pop(rid)

    def call(self, method: str, args: tuple = (), deadline=None,
             hang_timeout=None):
        return self.recv(self.send(method, args), deadline, hang_timeout)

    def hang_suspected(self, hang_timeout: float) -> bool:
        return False

    def stop(self, timeout: float = 5.0) -> None:
        self.worker.close()

    def put_down(self, grace: float | None = None) -> None:
        self.worker.close()

    def kill(self) -> None:
        self.worker.close()


def _shard_dir_name(number: int) -> str:
    return f"shard-{number:04d}"


def _config_summary(config: DiliConfig) -> dict:
    return {"omega": config.omega, "rho": config.rho}


def _build_shard_dir(
    dirpath, keys, values, config: DiliConfig
) -> None:
    """Bulk-load one shard directory and publish its first plan."""
    with DurableDILI(dirpath, config=config) as durable:
        if len(keys):
            durable.bulk_load(keys, values)
            durable.publish_plan()


class ShardedDILI:
    """Multi-process sharded serving facade over one state directory.

    The directory holds ``shards.json`` plus one DurableDILI state
    subdirectory per shard.  Batch ops mirror the unsharded API:
    ``get_batch`` (with optional tracer), ``contains_batch``,
    ``count_range`` / ``count_range_batch``, ``insert_batch``,
    ``delete_batch``, ``update_batch``, ``len()``.

    Thread-safety: all public ops serialize on one coordinator lock;
    parallelism is *across worker processes*, not across caller
    threads (ROADMAP item 1's scope -- in-process read concurrency is
    PR 7's epoch path).

    Supervision (see :mod:`repro.sharding.supervision`): every batch
    op draws all its pipe waits, restarts and retries from **one**
    ``request_timeout`` deadline budget; workers heartbeat every
    ``heartbeat_interval`` seconds and a worker silent past
    ``hang_timeout`` is escalated SIGTERM -> SIGKILL -> restart;
    restarts are gated per shard by ``policy`` (exponential backoff +
    budget) and repeated failures trip that shard's circuit breaker,
    isolating it while the rest of the fleet keeps serving.  With
    ``supervise=True`` (the default for process-backed fleets) a
    background thread probes for dead/hung workers and revives them
    off the request path.  Batch reads accept ``partial=True`` to
    return healthy-shard results with explicit per-key
    :data:`~repro.sharding.supervision.UNAVAILABLE` markers instead
    of failing; writes touching an isolated shard always fail fast
    with a retryable
    :class:`~repro.sharding.supervision.ShardUnavailableError`.
    """

    def __init__(
        self,
        dirpath,
        manifest: Manifest,
        *,
        processes: bool = True,
        serve: str = "mmap",
        sync: bool = True,
        request_timeout: float | None = 120.0,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        hang_timeout: float | None = None,
        policy: RestartPolicy | None = None,
        supervise: bool | None = None,
        probe_interval: float = 0.5,
    ) -> None:
        self.dirpath = os.fspath(dirpath)
        self.manifest = manifest
        self.processes = processes
        self.serve = serve
        self.sync = sync
        self.request_timeout = request_timeout
        self.heartbeat_interval = heartbeat_interval if processes else 0.0
        if hang_timeout is None and self.heartbeat_interval > 0:
            hang_timeout = 10.0 * self.heartbeat_interval
        self.hang_timeout = hang_timeout if processes else None
        self.policy = policy if policy is not None else RestartPolicy()
        self.router = router_from_dict(manifest.router)
        self.health = HealthMonitor()
        self.supervisor = FleetSupervisor(
            [entry.name for entry in manifest.shards], policy=self.policy
        )
        self.restarts = 0
        self.rebalances = 0
        self._ctx = _mp_context() if processes else None
        self._lock = threading.RLock()
        self._handles = [
            self._spawn(entry.name) for entry in manifest.shards
        ]
        self.ops_counts = [0] * len(self._handles)
        self.supervise = processes if supervise is None else supervise
        self._probe_interval = probe_interval
        self._stop_probe = threading.Event()
        self._probe_thread = None
        if self.supervise:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, name="shard-supervisor", daemon=True
            )
            self._probe_thread.start()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        dirpath,
        keys,
        values: list | None = None,
        *,
        num_shards: int = 2,
        partition: str = "range",
        tuning: str = "local",
        config: DiliConfig | None = None,
        seed: int = 0,
        **open_kwargs,
    ) -> "ShardedDILI":
        """Partition ``keys``, build + publish every shard, and serve.

        Args:
            partition: ``"range"`` quantile-partitions the keys and
                bulk-loads each shard independently (``tuning`` picks
                per-shard vs global cost parameters);  ``"aligned"``
                splits one global tree at the root's children, which
                preserves ±0 trace parity with the unsharded index.
            num_shards: Shard count (aligned mode caps it at the root
                fanout).
            open_kwargs: Forwarded to the constructor (``processes``,
                ``serve``, ``sync``, ``request_timeout``).
        """
        dirpath = os.fspath(dirpath)
        os.makedirs(dirpath, exist_ok=True)
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        entries: list[ShardEntry] = []
        if partition == "range":
            plan = build_range_shards(
                keys, values, num_shards, tuning=tuning, base=config,
                seed=seed,
            )
            for j, spec in enumerate(plan.shards):
                name = _shard_dir_name(j)
                _build_shard_dir(
                    os.path.join(dirpath, name),
                    spec.keys,
                    spec.values,
                    spec.config,
                )
                entries.append(
                    ShardEntry(name, len(spec.keys),
                               _config_summary(spec.config))
                )
            router = plan.router
        elif partition == "aligned":
            from repro.durability.recovery import SNAPSHOT_NAME
            from repro.durability.snapshot import write_snapshot

            part = split_aligned(keys, values, num_shards, config=config)
            for j, shard in enumerate(part.shards):
                name = _shard_dir_name(j)
                shard_dir = os.path.join(dirpath, name)
                os.makedirs(shard_dir, exist_ok=True)
                write_snapshot(
                    shard.index,
                    os.path.join(shard_dir, SNAPSHOT_NAME),
                    last_seqno=0,
                )
                with DurableDILI(shard_dir, config=config) as durable:
                    if durable.index.root is not None:
                        durable.publish_plan()
                entries.append(
                    ShardEntry(name, shard.count,
                               _config_summary(shard.index.config))
                )
            router = part.router
        else:
            raise ValueError(f"unknown partition mode {partition!r}")
        manifest = Manifest(
            router=router.to_dict(),
            shards=entries,
            generation=1,
            next_shard=len(entries),
            partition=partition,
        )
        write_manifest(dirpath, manifest)
        return cls(dirpath, manifest, **open_kwargs)

    @classmethod
    def open(cls, dirpath, **open_kwargs) -> "ShardedDILI":
        """Serve an existing sharded directory."""
        return cls(dirpath, read_manifest(dirpath), **open_kwargs)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._handles)

    def _spawn(self, name: str):
        shard_dir = os.path.join(self.dirpath, name)
        if self.processes:
            return ProcessHandle(
                shard_dir,
                serve=self.serve,
                sync=self.sync,
                ctx=self._ctx,
                heartbeat=self.heartbeat_interval,
                term_grace=self.policy.term_grace,
            )
        return LocalHandle(shard_dir, serve=self.serve, sync=self.sync)

    def _alive(self, index: int) -> bool:
        return self._handles[index].alive()

    def _deadline(self) -> Deadline:
        return Deadline(self.request_timeout)

    def _revive(self, index: int, *, deadline: Deadline | None = None) -> None:
        """Replace a dead worker under supervision gating.

        Recovery is the shard dir's problem: the fresh process
        re-opens the directory through DurableDILI + MmapDILI, i.e.
        the PR 6 fallback ladder decides what serves (published plan
        first, snapshot+WAL rebuild last).  The supervisor gates the
        attempt: a first failure revives immediately (a single crash
        stays transparent to callers), repeated failures back off
        exponentially and eventually trip the shard's breaker, which
        raises :class:`ShardUnavailableError` here instead of
        re-spawning the corpse.  Aggregate health is re-derived from
        *all* shards afterwards -- reviving one worker cannot declare
        the fleet healthy while another shard is down.
        """
        sup = self.supervisor
        delay = sup.authorize_restart(index)
        if delay > 0.0:
            if deadline is not None and delay >= deadline.remaining():
                led = sup.ledger(index)
                raise ShardUnavailableError(
                    f"shard {led.name} is backing off ({delay:.2f}s) "
                    f"past the request deadline",
                    shard=index,
                    name=led.name,
                    state=led.breaker.state,
                    retry_after=delay,
                )
            time.sleep(delay)
        self.restarts += 1
        sup.note_attempt(index)
        self.health.drive_to(Health.DEGRADED)
        old = self._handles[index]
        try:
            old.put_down(self.policy.term_grace)
        except Exception:
            pass
        probe_budget = (
            deadline if deadline is not None
            else Deadline(self.policy.probe_timeout)
        )
        try:
            self._handles[index] = self._spawn(
                self.manifest.shards[index].name
            )
            self.health.drive_to(Health.REPAIRING)
            self._handles[index].call(
                "ping", (),
                deadline=probe_budget, hang_timeout=self.hang_timeout,
            )
        except (
            WorkerDied, WorkerRemoteError, DeadlineExceeded, OSError
        ) as exc:
            sup.note_failure(index, str(exc))
            self.health.drive_to(sup.target_health(self._alive))
            raise WorkerDied(
                f"{self.manifest.shards[index].name}: restart failed: {exc}"
            ) from exc
        sup.note_success(index)
        self.health.drive_to(sup.target_health(self._alive))

    def _probe_loop(self) -> None:
        while not self._stop_probe.wait(self._probe_interval):
            try:
                self._probe_once()
            except Exception:
                # The supervisor must outlive any single probe error.
                pass

    def _probe_once(self) -> None:
        """One background supervision sweep, off the request path.

        Marks silently-dead and heartbeat-silent (hung) workers down
        -- putting hung ones down SIGTERM -> SIGKILL -- then revives
        every shard whose backoff has elapsed and whose breaker
        permits an attempt, and re-derives aggregate health.
        """
        with self._lock:
            if not self._handles:
                return
            sup = self.supervisor
            for index, handle in enumerate(self._handles):
                if not sup.ledger(index).up:
                    continue
                try:
                    hung = self.hang_timeout is not None and (
                        handle.hang_suspected(self.hang_timeout)
                    )
                except WorkerDied as exc:
                    sup.note_down(index, str(exc))
                    continue
                if hung:
                    handle.put_down(self.policy.term_grace)
                    sup.note_down(index, "heartbeat-silent (hung)")
                elif not handle.alive():
                    sup.note_down(index, "worker process exited")
            for index in sup.probe_candidates():
                try:
                    self._revive(index)
                except (WorkerDied, ShardUnavailableError):
                    pass
            self.health.drive_to(sup.target_health(self._alive))

    def _call(
        self,
        index: int,
        method: str,
        args: tuple = (),
        *,
        deadline: Deadline | None = None,
        retries: int = 2,
    ):
        """One synchronous worker call, restarting through deaths.

        The whole call -- every pipe wait, hang escalation, restart
        and retry -- draws from one deadline budget, so the worst
        case is ``deadline + eps``, never ``retries x timeout``.
        """
        if deadline is None:
            deadline = self._deadline()
        sup = self.supervisor
        for attempt in range(retries + 1):
            if not sup.available(index):
                self._revive(index, deadline=deadline)
            handle = self._handles[index]
            try:
                return handle.call(
                    method, args,
                    deadline=deadline, hang_timeout=self.hang_timeout,
                )
            except WorkerHung as exc:
                # Alive but heartbeat-silent: poll already failed,
                # escalate to SIGTERM -> SIGKILL, then restart.
                handle.put_down(self.policy.term_grace)
                sup.note_down(index, str(exc))
                if attempt == retries or deadline.expired:
                    raise
            except WorkerDied as exc:
                sup.note_down(index, str(exc))
                if attempt == retries or deadline.expired:
                    raise

    def _recv_retry(
        self, index: int, rid: int, method: str, args: tuple,
        deadline: Deadline,
    ):
        """Gather one in-flight response, restart + re-ask on death."""
        handle = self._handles[index]
        try:
            return handle.recv(
                rid, deadline=deadline, hang_timeout=self.hang_timeout
            )
        except WorkerHung as exc:
            handle.put_down(self.policy.term_grace)
            self.supervisor.note_down(index, str(exc))
        except WorkerDied as exc:
            self.supervisor.note_down(index, str(exc))
        self._revive(index, deadline=deadline)
        return self._call(index, method, args, deadline=deadline, retries=0)

    # ------------------------------------------------------------------
    # Scatter/gather plumbing
    # ------------------------------------------------------------------

    def _scatter(self, keys: np.ndarray):
        """Route + stable-sort keys by shard.

        Returns ``(shard_ids, order, cuts)`` where ``order`` is the
        stable permutation grouping keys by shard and ``cuts[s]`` /
        ``cuts[s + 1]`` bound shard ``s``'s slice of it.
        """
        shard_ids = self.router.route(keys)
        order = np.argsort(shard_ids, kind="stable")
        cuts = np.searchsorted(
            shard_ids[order], np.arange(self.num_shards + 1)
        )
        return shard_ids, order, cuts

    _READ_FAULTS = (ShardUnavailableError, WorkerDied, DeadlineExceeded)

    def _gather_object(
        self, n: int, pending, record: bool, tracer: Tracer,
        deadline: Deadline, *, partial: bool = False, unavailable=(),
    ):
        """Collect get_batch responses back into input order.

        In partial mode, a shard that cannot answer within the shared
        budget marks exactly its keys' positions with
        :data:`UNAVAILABLE` instead of failing the batch.
        """
        out = np.empty(n, dtype=object)
        segments: list = [None] * n if record else []
        for positions in unavailable:
            out[positions] = UNAVAILABLE
        for index, positions, rid, args in pending:
            try:
                values, segs = self._recv_retry(
                    index, rid, "get_batch", args, deadline
                )
            except self._READ_FAULTS:
                if not partial:
                    raise
                out[positions] = UNAVAILABLE
                continue
            boxed = np.empty(len(values), dtype=object)
            boxed[:] = values
            out[positions] = boxed
            if record:
                for pos, seg in zip(positions.tolist(), segs):
                    segments[pos] = seg
        if record:
            for seg in segments:
                if seg is not None:
                    replay_segment(seg, tracer)
        return list(out)

    # ------------------------------------------------------------------
    # Batch reads
    # ------------------------------------------------------------------

    def get_batch(
        self, keys, tracer: Tracer = NULL_TRACER, *, partial: bool = False
    ) -> list:
        """Values per key (None where absent), input order preserved.

        With a real tracer, the per-key simulated event streams the
        workers recorded are replayed here in input order -- on an
        aligned read-only partition that is the exact unsharded stream
        (±0 cycles; once WAL-tail overlays apply the per-key costs are
        the documented PR 6 base-descent approximation).

        ``partial=True`` opts into degraded serving: keys routed to a
        shard that is isolated (breaker OPEN), dead beyond revival, or
        too slow for the request deadline come back as the
        :data:`~repro.sharding.supervision.UNAVAILABLE` marker while
        every other key is answered normally.  The default stays
        fail-fast: any unavailable shard raises.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        n = len(keys)
        if n == 0:
            return []
        record = not isinstance(tracer, NullTracer)
        with self._lock:
            deadline = self._deadline()
            _, order, cuts = self._scatter(keys)
            pending = []
            unavailable = []
            for s in range(self.num_shards):
                lo, hi = int(cuts[s]), int(cuts[s + 1])
                if lo == hi:
                    continue
                positions = order[lo:hi]
                args = (keys[positions], record)
                try:
                    rid = self._send_retry(s, "get_batch", args, deadline)
                except self._READ_FAULTS:
                    if not partial:
                        raise
                    unavailable.append(positions)
                    continue
                self.ops_counts[s] += hi - lo
                pending.append((s, positions, rid, args))
            return self._gather_object(
                n, pending, record, tracer, deadline,
                partial=partial, unavailable=unavailable,
            )

    def _send_retry(
        self, index: int, method: str, args: tuple, deadline: Deadline
    ) -> int:
        if not self.supervisor.available(index):
            self._revive(index, deadline=deadline)
        try:
            return self._handles[index].send(method, args)
        except WorkerDied as exc:
            self.supervisor.note_down(index, str(exc))
            self._revive(index, deadline=deadline)
            return self._handles[index].send(method, args)

    def contains_batch(self, keys, *, partial: bool = False) -> np.ndarray:
        """Membership per key.  ``partial=True`` returns an object
        array holding True/False/:data:`UNAVAILABLE` per key instead
        of failing on an unavailable shard."""
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        n = len(keys)
        out = (
            np.empty(n, dtype=object) if partial
            else np.zeros(n, dtype=bool)
        )
        if n == 0:
            return out
        with self._lock:
            deadline = self._deadline()
            _, order, cuts = self._scatter(keys)
            pending = []
            for s in range(self.num_shards):
                lo, hi = int(cuts[s]), int(cuts[s + 1])
                if lo == hi:
                    continue
                positions = order[lo:hi]
                args = (keys[positions],)
                try:
                    rid = self._send_retry(s, "contains_batch", args, deadline)
                except self._READ_FAULTS:
                    if not partial:
                        raise
                    out[positions] = UNAVAILABLE
                    continue
                self.ops_counts[s] += hi - lo
                pending.append((s, positions, rid, args))
            for s, positions, rid, args in pending:
                try:
                    answer = self._recv_retry(
                        s, rid, "contains_batch", args, deadline
                    )
                except self._READ_FAULTS:
                    if not partial:
                        raise
                    out[positions] = UNAVAILABLE
                    continue
                if partial:
                    boxed = np.empty(len(positions), dtype=object)
                    boxed[:] = [bool(b) for b in answer]
                    out[positions] = boxed
                else:
                    out[positions] = np.asarray(answer)
        return out

    def count_range(self, lo: float, hi: float) -> int:
        return int(self.count_range_batch([lo], [hi])[0])

    def count_range_batch(self, los, his) -> np.ndarray:
        """Per-pair counts; shard contents are disjoint, so the
        all-shard broadcast sums are exact."""
        los = np.ascontiguousarray(los, dtype=np.float64)
        his = np.ascontiguousarray(his, dtype=np.float64)
        if len(los) != len(his):
            raise ValueError("los and his must match in length")
        totals = np.zeros(len(los), dtype=np.int64)
        if len(los) == 0:
            return totals
        with self._lock:
            deadline = self._deadline()
            args = (los, his)
            # No partial mode: the broadcast sums need every shard's
            # answer to be exact, so a missing shard must fail loudly.
            pending = [
                (s, self._send_retry(s, "count_range_batch", args, deadline))
                for s in range(self.num_shards)
            ]
            for s, rid in pending:
                totals += np.asarray(
                    self._recv_retry(
                        s, rid, "count_range_batch", args, deadline
                    ),
                    dtype=np.int64,
                )
        return totals

    # ------------------------------------------------------------------
    # Batch writes
    # ------------------------------------------------------------------

    def _write_batch(
        self, method: str, keys, values: list | None
    ) -> np.ndarray:
        keys = DurableDILI._check_batch_keys(keys)
        n = len(keys)
        if values is not None and len(values) != n:
            raise ValueError("values must match keys in length")
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        with self._lock:
            deadline = self._deadline()
            _, order, cuts = self._scatter(keys)
            # Writes never degrade partially: every target shard must
            # be available (or revivable right now) *before* anything
            # is scattered, so an isolated shard rejects the whole
            # batch with a typed, retryable error and no side effects.
            for s in range(self.num_shards):
                if int(cuts[s]) == int(cuts[s + 1]):
                    continue
                if not self.supervisor.available(s):
                    self._revive(s, deadline=deadline)
            pending = []
            for s in range(self.num_shards):
                lo, hi = int(cuts[s]), int(cuts[s + 1])
                if lo == hi:
                    continue
                positions = order[lo:hi]
                sub_keys = keys[positions]
                if method == "delete_batch":
                    args: tuple = (sub_keys,)
                elif values is None:
                    args = (sub_keys, None)
                else:
                    args = (sub_keys, [values[i] for i in positions])
                rid = self._send_retry(s, method, args, deadline)
                self.ops_counts[s] += hi - lo
                pending.append((s, positions, rid, args))
            for s, positions, rid, args in pending:
                out[positions] = np.asarray(
                    self._recv_retry(s, rid, method, args, deadline)
                )
        return out

    def insert_batch(self, keys, values: list | None = None) -> np.ndarray:
        return self._write_batch("insert_batch", keys, values)

    def delete_batch(self, keys) -> np.ndarray:
        return self._write_batch("delete_batch", keys, None)

    def update_batch(self, keys, values: list) -> np.ndarray:
        if values is None:
            raise ValueError("update_batch requires values")
        return self._write_batch("update_batch", keys, values)

    def republish(self, index: int | None = None) -> dict:
        """Force shard(s) to publish a fresh base generation now.

        Workers compact their WAL tail into a new base generation
        automatically once it grows past ``republish_threshold``;
        this triggers the compaction eagerly -- e.g. before a planned
        shutdown, so the next recovery opens a published plan instead
        of replaying a WAL tail.  Returns ``{shard_name: generation}``
        for the affected shards.
        """
        targets = range(self.num_shards) if index is None else [index]
        with self._lock:
            return {
                self.manifest.shards[s].name: int(self._call(s, "publish"))
                for s in targets
            }

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def _boundaries(self) -> np.ndarray:
        """Current interior boundaries, converting aligned -> range.

        An aligned router has no key-space boundaries; the conversion
        uses each shard's first *stored* key, which routes every
        stored key to its current shard (absent keys may flip to a
        neighbour, which answers None either way -- correct).  After
        conversion the partition is a plain range partition and the
        ±0 alignment guarantee is documented as create-time-only.
        """
        if isinstance(self.router, ShardRouter):
            return self.router.boundaries.copy()
        boundaries = []
        previous = -np.inf
        for s in range(1, self.num_shards):
            first = self._call(s, "first_key")
            boundary = previous if first is None else float(first)
            boundaries.append(max(boundary, previous))
            previous = boundaries[-1]
        return np.asarray(boundaries, dtype=np.float64)

    def _fresh_shard_names(self, count: int) -> list[str]:
        names = [
            _shard_dir_name(self.manifest.next_shard + i)
            for i in range(count)
        ]
        self.manifest.next_shard += count
        return names

    def _swap_topology(
        self,
        at: int,
        drop: int,
        new_names: list[str],
        new_handles: list,
        new_entries: list[ShardEntry],
        new_boundaries: np.ndarray,
    ) -> None:
        """Atomically replace shards [at, at+drop) with the new ones.

        The router and shard table flip together under the coordinator
        lock; the manifest is written before the old workers stop, so
        a crash at any instant leaves a directory that reopens to
        either the old or the new complete topology.
        """
        old_handles = self._handles[at:at + drop]
        self._handles[at:at + drop] = new_handles
        self.supervisor.splice(at, drop, new_names)
        self.manifest.shards[at:at + drop] = new_entries
        self.manifest.router = ShardRouter(new_boundaries).to_dict()
        self.manifest.generation += 1
        self.manifest.partition = "range"
        self.router = router_from_dict(self.manifest.router)
        self.ops_counts[at:at + drop] = [0] * len(new_handles)
        write_manifest(self.dirpath, self.manifest)
        self.rebalances += 1
        for handle in old_handles:
            try:
                handle.stop()
            except Exception:
                pass

    def split_shard(self, index: int, *, mid_hook=None) -> dict:
        """Split shard ``index`` at its median key into two shards.

        Both replacement shards are bulk-loaded with configs re-fit to
        their *local* key distribution and fully published through
        their own PlanDirectory before the router flips.  ``mid_hook``
        (tests only) runs after the new directories are built but
        before the swap -- the chaos harness kills workers there.
        """
        with self._lock:
            if not 0 <= index < self.num_shards:
                raise ValueError(f"no shard {index}")
            boundaries = self._boundaries()
            items = self._call(index, "items")
            if len(items) < 2:
                raise ValueError(
                    f"shard {index} has {len(items)} keys; nothing to split"
                )
            mid = len(items) // 2
            halves = [items[:mid], items[mid:]]
            split_key = float(items[mid][0])
            names = self._fresh_shard_names(2)
            entries = []
            for name, half in zip(names, halves):
                half_keys = np.asarray([k for k, _ in half], dtype=np.float64)
                half_values = [v for _, v in half]
                config, _ = fit_shard_config(half_keys)
                _build_shard_dir(
                    os.path.join(self.dirpath, name),
                    half_keys,
                    half_values,
                    config,
                )
                entries.append(
                    ShardEntry(name, len(half_keys), _config_summary(config))
                )
            handles = [self._spawn(name) for name in names]
            if mid_hook is not None:
                mid_hook()
            new_boundaries = np.insert(boundaries, index, split_key)
            self._swap_topology(
                index, 1, names, handles, entries, new_boundaries
            )
            return {
                "action": "split",
                "shard": index,
                "at": split_key,
                "new": names,
            }

    def merge_shards(self, index: int) -> dict:
        """Merge shards ``index`` and ``index + 1`` into one."""
        with self._lock:
            if not 0 <= index < self.num_shards - 1:
                raise ValueError(f"no adjacent pair at {index}")
            boundaries = self._boundaries()
            items = list(self._call(index, "items")) + list(
                self._call(index + 1, "items")
            )
            merged_keys = np.asarray([k for k, _ in items], dtype=np.float64)
            merged_values = [v for _, v in items]
            name = self._fresh_shard_names(1)[0]
            config, _ = fit_shard_config(merged_keys)
            _build_shard_dir(
                os.path.join(self.dirpath, name),
                merged_keys,
                merged_values,
                config,
            )
            entries = [
                ShardEntry(name, len(merged_keys), _config_summary(config))
            ]
            handles = [self._spawn(name)]
            new_boundaries = np.delete(boundaries, index)
            self._swap_topology(
                index, 2, [name], handles, entries, new_boundaries
            )
            return {"action": "merge", "shards": [index, index + 1],
                    "new": [name]}

    def maybe_rebalance(
        self,
        *,
        split_ratio: float = 2.0,
        merge_ratio: float = 0.25,
    ) -> dict | None:
        """Split the hot shard / merge the coldest adjacent pair.

        Driven by the per-shard ops counters the scatter path
        maintains: a shard carrying more than ``split_ratio`` times
        the mean load splits; an adjacent pair carrying less than
        ``merge_ratio`` of the mean (each) merges.  Counters reset
        after every action so decisions reflect fresh traffic.
        """
        with self._lock:
            total = sum(self.ops_counts)
            if total == 0 or self.num_shards == 0:
                return None
            mean = total / self.num_shards
            hot = int(np.argmax(self.ops_counts))
            if self.num_shards > 1 and self.ops_counts[hot] > split_ratio * mean:
                if self._call(hot, "len") >= 2:
                    action = self.split_shard(hot)
                    self.ops_counts = [0] * self.num_shards
                    return action
            if self.num_shards >= 2:
                pair_load = [
                    self.ops_counts[i] + self.ops_counts[i + 1]
                    for i in range(self.num_shards - 1)
                ]
                coldest = int(np.argmin(pair_load))
                if pair_load[coldest] < merge_ratio * mean * 2:
                    action = self.merge_shards(coldest)
                    self.ops_counts = [0] * self.num_shards
                    return action
            return None

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def kill_worker(self, index: int) -> int | None:
        """SIGKILL one worker (chaos harness); returns its old pid."""
        with self._lock:
            handle = self._handles[index]
            pid = handle.pid
            handle.kill()
            return pid

    def pause_worker(self, index: int) -> int | None:
        """SIGSTOP one worker (chaos harness); returns its pid.

        The process stays alive but stops heartbeating, which is the
        hang signature the supervisor must detect and escalate
        (SIGTERM stays pending on a stopped process; SIGKILL works).
        """
        with self._lock:
            pid = self._handles[index].pid
            if pid is not None and pid != os.getpid():
                os.kill(pid, signal.SIGSTOP)
            return pid

    def set_worker_delay(self, index: int, seconds: float) -> float:
        """Chaos harness: inject per-verb serving latency into one
        worker (it keeps heartbeating -- slow, not hung)."""
        with self._lock:
            return float(self._call(index, "set_delay", (float(seconds),)))

    def status(self) -> dict:
        """Topology, router, health and per-shard worker status."""
        with self._lock:
            shards = []
            for s, entry in enumerate(self.manifest.shards):
                try:
                    worker = self._call(s, "status")
                except (
                    WorkerDied, WorkerRemoteError,
                    ShardUnavailableError, DeadlineExceeded,
                ) as exc:
                    worker = {"error": str(exc)}
                worker["name"] = entry.name
                worker["coordinator_ops"] = self.ops_counts[s]
                worker["supervision"] = self.supervisor.ledger(s).snapshot()
                shards.append(worker)
            return {
                "dir": self.dirpath,
                "generation": self.manifest.generation,
                "partition": self.manifest.partition,
                "num_shards": self.num_shards,
                "health": self.health.state.value,
                "restarts": self.restarts,
                "rebalances": self.rebalances,
                "open_breakers": self.supervisor.open_breakers(),
                "supervise": self.supervise,
                "router": {
                    **self.router.to_dict(),
                    "routed": self.router.routed,
                    "corrected": self.router.corrected,
                },
                "shards": shards,
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(
                int(self._call(s, "len")) for s in range(self.num_shards)
            )

    def close(self) -> None:
        # Stop the probe thread *before* taking the lock (its loop
        # acquires the lock per sweep -- joining under it deadlocks).
        self._stop_probe.set()
        probe = self._probe_thread
        if probe is not None:
            probe.join(timeout=30.0)
        with self._lock:
            self._probe_thread = None
            for handle in self._handles:
                try:
                    handle.stop()
                except Exception:
                    pass
            self._handles = []

    def __enter__(self) -> "ShardedDILI":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
