"""The shard manifest: one JSON file naming the partition.

``shards.json`` in the sharded state directory records the router, the
shard subdirectories (each a standard
:class:`~repro.durability.durable.DurableDILI` state dir with its own
WAL, snapshot and ``plans/`` directory), and a monotonic generation
counter bumped by every rebalance.  Writes are atomic (temp file +
fsync + ``os.replace`` + directory fsync), so a crash mid-rebalance
leaves either the old complete manifest or the new one -- the same
contract as the snapshot and plan-store writers.

Old shard directories are never deleted by a rebalance; they simply
stop being referenced, mirroring the plan store's
quarantine-never-delete policy.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

MANIFEST_NAME = "shards.json"
MANIFEST_VERSION = 1


class ManifestError(ValueError):
    """The manifest is missing, torn, or structurally invalid."""


@dataclass
class ShardEntry:
    """One referenced shard directory."""

    name: str  # subdirectory, e.g. "shard-0000"
    count: int  # keys at last manifest write (informational)
    config: dict = field(default_factory=dict)  # tuned knobs, for status

    def to_dict(self) -> dict:
        return {"name": self.name, "count": self.count, "config": self.config}

    @classmethod
    def from_dict(cls, spec: dict) -> "ShardEntry":
        return cls(spec["name"], int(spec["count"]), dict(spec.get("config", {})))


@dataclass
class Manifest:
    """The full partition description."""

    router: dict  # router_from_dict spec
    shards: list  # list[ShardEntry]
    generation: int = 1
    next_shard: int = 0  # next fresh shard directory number
    partition: str = "range"  # "range" | "aligned" (informational)

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "generation": self.generation,
            "partition": self.partition,
            "next_shard": self.next_shard,
            "router": self.router,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "Manifest":
        if spec.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {spec.get('version')!r}"
            )
        return cls(
            router=dict(spec["router"]),
            shards=[ShardEntry.from_dict(s) for s in spec["shards"]],
            generation=int(spec["generation"]),
            next_shard=int(spec["next_shard"]),
            partition=str(spec.get("partition", "range")),
        )


def _fsync_dir(dirpath: str) -> None:
    fd = os.open(dirpath, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def manifest_path(dirpath) -> str:
    return os.path.join(os.fspath(dirpath), MANIFEST_NAME)


def write_manifest(dirpath, manifest: Manifest) -> str:
    """Atomically publish ``manifest`` under ``dirpath``."""
    path = manifest_path(dirpath)
    payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path))
    return path


def read_manifest(dirpath) -> Manifest:
    path = manifest_path(dirpath)
    if not os.path.exists(path):
        raise ManifestError(f"{path}: no shard manifest")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            spec = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"{path}: unreadable manifest: {exc}") from exc
    if not isinstance(spec, dict):
        raise ManifestError(f"{path}: manifest must be a JSON object")
    try:
        return Manifest.from_dict(spec)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ManifestError):
            raise
        raise ManifestError(f"{path}: malformed manifest: {exc}") from exc
