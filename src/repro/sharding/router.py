"""Learned routing of keys to contiguous range shards.

Two routers cover the two partitioning modes:

* :class:`ShardRouter` works in **key space**.  The partition is
  described by its interior boundary keys (the smallest stored key of
  every shard but the first), and the ground truth is
  ``np.searchsorted(boundaries, keys, side="right")``.  The fast path
  is a one-level Eq.1-style linear model fit over the boundary keys
  (the root-model-dispatches-to-sub-index pattern from "The Case for
  Learned Index Structures"), followed by a *last-mile correction*:
  every prediction is checked against the predicted shard's key range
  and only the mispredicted tail falls back to a real binary search.
  The result is exactly ``searchsorted``-equivalent -- a prediction is
  accepted only when ``lower[p] <= key < upper[p]``, and for a sorted
  boundary array that inequality pins the searchsorted answer uniquely
  (duplicate boundary keys make the shard between them empty, and its
  degenerate ``lower == upper`` window can never accept a key).

* :class:`AlignedRouter` works in **child-index space**.  When shards
  are built by splitting one global tree at the root's children (see
  :func:`repro.sharding.partition.split_aligned`), routing must agree
  *bit for bit* with the root's own floor-model dispatch, or a
  boundary-adjacent probe would land on a shard that holds only a
  placeholder for that child and trace a different descent.  The
  router therefore evaluates the root model with the identical
  ``floor(intercept + slope * key)``-and-clamp arithmetic (numpy
  float64 elementwise is IEEE-identical to the scalar path) and then
  maps child index to shard by its contiguous group starts.

Both routers are plain data (picklable, JSON-serializable via
``to_dict``/``from_dict``) so the coordinator can persist them in the
shard manifest and atomically swap them during a rebalance.
"""

from __future__ import annotations

import numpy as np

from repro.core.linear_model import LinearModel


def _as_key_array(keys) -> np.ndarray:
    out = np.asarray(keys, dtype=np.float64)
    if out.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    return out


class ShardRouter:
    """Key-space router: learned prediction + last-mile binary search.

    Attributes:
        boundaries: Interior boundary keys, non-decreasing, length
            ``num_shards - 1``.  Shard ``j`` covers
            ``[boundaries[j-1], boundaries[j])`` with open ends at
            the extremes, so keys below the first boundary route to
            shard 0 and keys at or above the last route to the last
            shard.
        num_shards: Total shard count (>= 1).
        routed: Keys routed since construction (observability).
        corrected: Keys whose model prediction needed the binary-search
            last mile.
    """

    kind = "range"

    def __init__(self, boundaries, num_shards: int | None = None) -> None:
        self.boundaries = _as_key_array(boundaries)
        if np.any(np.diff(self.boundaries) < 0):
            raise ValueError("shard boundaries must be non-decreasing")
        self.num_shards = (
            len(self.boundaries) + 1 if num_shards is None else int(num_shards)
        )
        if self.num_shards != len(self.boundaries) + 1:
            raise ValueError(
                f"{self.num_shards} shards need "
                f"{self.num_shards - 1} boundaries, "
                f"got {len(self.boundaries)}"
            )
        self.model = self._fit_model(self.boundaries)
        # Acceptance windows for the learned prediction: shard j owns
        # [lower[j], upper[j]) with infinite sentinels at the extremes.
        self._lower = np.concatenate(([-np.inf], self.boundaries))
        self._upper = np.concatenate((self.boundaries, [np.inf]))
        self.routed = 0
        self.corrected = 0

    @staticmethod
    def _fit_model(boundaries: np.ndarray) -> LinearModel:
        # Boundary key boundaries[i] is the first key of shard i + 1,
        # so the model maps boundary -> owning shard index.
        if len(boundaries) == 0:
            return LinearModel(0.0, 0.0)
        lo, hi = float(boundaries[0]), float(boundaries[-1])
        if hi <= lo:  # single or duplicate boundary: no usable span
            return LinearModel(0.0, 1.0)
        ys = np.arange(1, len(boundaries) + 1, dtype=np.float64)
        return LinearModel.fit(boundaries, ys)

    def route(self, keys) -> np.ndarray:
        """Shard id per key; exactly searchsorted-right equivalent."""
        keys = _as_key_array(keys)
        self.routed += len(keys)
        if self.num_shards == 1 or len(keys) == 0:
            return np.zeros(len(keys), dtype=np.int64)
        pred = np.floor(self.model.intercept + self.model.slope * keys)
        # NaN-free clamp: predictions are finite because boundaries are.
        pred = np.clip(pred, 0, self.num_shards - 1).astype(np.int64)
        wrong = (keys < self._lower[pred]) | (keys >= self._upper[pred])
        n_wrong = int(np.count_nonzero(wrong))
        if n_wrong:
            self.corrected += n_wrong
            pred[wrong] = np.searchsorted(
                self.boundaries, keys[wrong], side="right"
            )
        return pred

    def route_naive(self, keys) -> np.ndarray:
        """The ground truth the learned path must match exactly."""
        keys = _as_key_array(keys)
        return np.searchsorted(self.boundaries, keys, side="right").astype(
            np.int64
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "boundaries": [float(b) for b in self.boundaries],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "ShardRouter":
        return cls(spec["boundaries"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRouter(shards={self.num_shards}, "
            f"slope={self.model.slope:.3g})"
        )


class AlignedRouter:
    """Child-index router for shards split at the global root's children.

    Attributes:
        slope/intercept: The global root's Eq.1 model, copied verbatim.
        fanout: The global root's child count.
        group_starts: First child index of each shard's contiguous
            group; ``group_starts[0]`` must be 0.
    """

    kind = "aligned"

    def __init__(
        self, slope: float, intercept: float, fanout: int, group_starts
    ) -> None:
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.fanout = int(fanout)
        self.group_starts = np.asarray(group_starts, dtype=np.int64)
        if len(self.group_starts) == 0 or self.group_starts[0] != 0:
            raise ValueError("group_starts must begin with child 0")
        if np.any(np.diff(self.group_starts) <= 0):
            raise ValueError("group_starts must be strictly increasing")
        if self.group_starts[-1] >= self.fanout:
            raise ValueError("group start beyond the root's fanout")
        self.num_shards = len(self.group_starts)
        self.routed = 0
        self.corrected = 0  # parity with ShardRouter's counters

    def child_of(self, keys) -> np.ndarray:
        """Root child per key -- InternalNode.child_index, vectorized.

        Must stay arithmetic-identical to
        :meth:`repro.core.nodes.InternalNode.child_index`: same
        multiply-add, same floor, same clamp.
        """
        keys = _as_key_array(keys)
        pos = np.floor(self.intercept + self.slope * keys)
        return np.clip(pos, 0, self.fanout - 1).astype(np.int64)

    def route(self, keys) -> np.ndarray:
        keys = _as_key_array(keys)
        self.routed += len(keys)
        if self.num_shards == 1 or len(keys) == 0:
            return np.zeros(len(keys), dtype=np.int64)
        child = self.child_of(keys)
        return (
            np.searchsorted(self.group_starts, child, side="right") - 1
        ).astype(np.int64)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "slope": self.slope,
            "intercept": self.intercept,
            "fanout": self.fanout,
            "group_starts": [int(g) for g in self.group_starts],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "AlignedRouter":
        return cls(
            spec["slope"], spec["intercept"], spec["fanout"],
            spec["group_starts"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlignedRouter(shards={self.num_shards}, fanout={self.fanout})"
        )


def router_from_dict(spec: dict):
    """Rebuild either router type from its manifest entry."""
    kind = spec.get("kind")
    if kind == ShardRouter.kind:
        return ShardRouter.from_dict(spec)
    if kind == AlignedRouter.kind:
        return AlignedRouter.from_dict(spec)
    raise ValueError(f"unknown router kind {kind!r}")
