"""Per-shard circuit breaker and restart policy.

A crash-looping shard must not be allowed to consume the fleet: PR 8's
coordinator retried a dead worker synchronously and forever inside the
request path, so one poisoned shard directory turned every request that
touched it into an unbounded spawn-fail loop.  The supervision layer
replaces that with two small, clock-driven machines:

* :class:`RestartPolicy` -- how eagerly a dead worker may be revived:
  the first failure restarts immediately (a single crash stays
  transparent, the PR 8 contract), repeated failures back off
  exponentially, and after ``budget`` *consecutive* failures the
  shard's breaker trips.
* :class:`CircuitBreaker` -- the classic CLOSED -> OPEN -> HALF_OPEN
  machine, per shard.  While OPEN the shard is isolated: requests
  fail fast (or degrade to partial results) instead of re-spawning the
  corpse; after ``cooldown`` seconds one *probe* restart is allowed
  (HALF_OPEN).  A successful probe closes the breaker; a failed one
  re-opens it for another cooldown.

Both take an injectable monotonic ``clock`` so the state machines are
unit-testable without sleeping.  Neither is thread-safe on its own:
all mutation happens under the owning coordinator's lock.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

from repro.check.errors import InvariantError


class BreakerState(enum.Enum):
    """How much the fleet currently trusts one shard's worker."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"


@dataclass(frozen=True)
class RestartPolicy:
    """Backoff + budget for supervised worker restarts.

    Attributes:
        backoff_base: Delay before the *second* consecutive restart
            attempt (the first retries immediately so an isolated
            crash stays invisible to callers).
        backoff_factor: Multiplier per further consecutive failure.
        backoff_cap: Upper bound on any single backoff delay.
        budget: Consecutive failed restarts before the shard's
            circuit breaker opens.
        cooldown: Seconds an OPEN breaker isolates the shard before a
            HALF_OPEN probe restart is allowed.
        probe_timeout: Deadline budget for the post-restart ``ping``
            probe (used when no request deadline is in scope, e.g.
            the background probe thread).
        term_grace: Bounded wait after SIGTERM before escalating to
            SIGKILL when putting down a hung or stopping worker.
    """

    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    budget: int = 3
    cooldown: float = 5.0
    probe_timeout: float = 10.0
    term_grace: float = 1.0

    def backoff(self, consecutive_failures: int) -> float:
        """Delay before the next restart attempt.

        Zero after a success or a single isolated failure; exponential
        in the number of *consecutive* failures after that.
        """
        if consecutive_failures <= 1:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (
            consecutive_failures - 2
        )
        return min(self.backoff_cap, delay)


class CircuitBreaker:
    """One shard's CLOSED -> OPEN -> HALF_OPEN trust machine.

    ``record_failure`` / ``record_success`` feed restart outcomes in;
    ``allow_attempt`` gates restart attempts (and flips OPEN ->
    HALF_OPEN once the cooldown has elapsed).  ``state`` alone never
    mutates, so status snapshots are side-effect free.
    """

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise InvariantError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = BreakerState.CLOSED
        self.failures = 0  # consecutive
        self.trips = 0
        self.opened_at: float | None = None
        #: Every committed transition, oldest first.
        self.history: list[tuple[BreakerState, BreakerState]] = []

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def closed(self) -> bool:
        return self._state is BreakerState.CLOSED

    def _to(self, new: BreakerState) -> None:
        if new is self._state:
            return
        self.history.append((self._state, new))
        self._state = new

    def cooldown_remaining(self) -> float:
        """Seconds until an OPEN breaker will allow a probe (0 when
        not OPEN or already probe-ready)."""
        if self._state is not BreakerState.OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown - self._clock())

    def allow_attempt(self) -> bool:
        """May the caller attempt a restart now?

        CLOSED always allows.  OPEN refuses until ``cooldown`` has
        elapsed, then transitions to HALF_OPEN and allows exactly the
        probe attempt.  HALF_OPEN allows (the probe is in flight; the
        coordinator lock serializes attempts).
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            return True
        if self.cooldown_remaining() > 0.0:
            return False
        self._to(BreakerState.HALF_OPEN)
        return True

    def record_failure(self) -> None:
        """One restart attempt failed; trip after ``threshold``
        consecutive failures (immediately when a HALF_OPEN probe
        fails)."""
        self.failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self.failures >= self.threshold
        ):
            if self._state is not BreakerState.OPEN:
                self.trips += 1
            self._to(BreakerState.OPEN)
            self.opened_at = self._clock()

    def record_success(self) -> None:
        """A restart (or probe) succeeded; full trust restored."""
        self.failures = 0
        self.opened_at = None
        self._to(BreakerState.CLOSED)

    def snapshot(self) -> dict:
        return {
            "state": self._state.value,
            "failures": self.failures,
            "trips": self.trips,
            "cooldown_remaining": round(self.cooldown_remaining(), 3),
        }
