"""Fleet supervision: deadline budgets, pipe wrappers, shard ledgers.

This module sits between :class:`~repro.sharding.coordinator.ShardedDILI`
and its worker handles and owns the three things PR 8's failure
handling lacked:

* **One deadline per request.**  :class:`Deadline` is created once per
  public batch op and threaded through every send, receive, restart
  and retry, so a request with one hung shard completes within
  ``deadline + eps`` -- never ``retries x timeout``.  Every pipe wait
  is sliced from the same budget.
* **Sanctioned pipe receives.**  ``poll_frame`` / ``recv_frame`` /
  ``drain_stale`` are the *only* places in ``repro.sharding`` allowed
  to call ``Connection.poll()`` / ``Connection.recv()`` -- lint rule
  CHK014 confines the raw primitives to this module so no untimed
  receive can creep back into the request path.  Frames are
  shape-checked by ``_validate_response`` before any field is trusted
  (the CHK011 boundary).
* **Per-shard health ledgers.**  :class:`FleetSupervisor` tracks each
  shard's liveness, restart counts, consecutive failures, backoff
  schedule and :class:`~repro.sharding.breaker.CircuitBreaker`, and
  derives the *aggregate* coordinator health from the per-shard
  states -- reviving one worker can no longer mark the fleet HEALTHY
  while another shard is dead.

The worker side heartbeats (``HEARTBEAT_RID`` frames) so the
coordinator can tell a *hung* worker (SIGSTOP, deadlock: heartbeats
stop) from a merely *slow* one (heartbeats keep flowing): hung workers
are escalated poll -> SIGTERM -> SIGKILL -> restart; slow workers are
left alone until the request deadline expires, which surfaces as a
retryable :class:`DeadlineExceeded` (or a per-key
:data:`UNAVAILABLE` marker in partial mode) rather than a kill.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.check.errors import InvariantError
from repro.resilience.health import Health
from repro.sharding.breaker import BreakerState, CircuitBreaker, RestartPolicy

#: Request id of worker heartbeat frames (never a real request: request
#: ids are positive).
HEARTBEAT_RID = -2

#: Request id of the worker's startup-failure report.
STARTUP_RID = -1

#: Default slice for one pipe poll; bounds how stale a liveness check
#: can be, not how long a request may wait.
POLL_INTERVAL = 0.05


class WorkerDied(RuntimeError):
    """The worker process is gone (crash, kill, broken pipe)."""


class WorkerHung(WorkerDied):
    """The worker process is alive but heartbeat-silent past the hang
    budget (SIGSTOP, deadlock, pathological disk stall).  The
    supervisor escalates: SIGTERM -> SIGKILL -> restart."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline budget ran out while the worker was
    alive and heartbeating -- slow, not hung.  Retryable: the shard is
    not replaced, the caller may re-ask with a fresh budget."""

    retryable = True


class ShardUnavailableError(RuntimeError):
    """A shard is isolated behind its circuit breaker (or cannot be
    revived within the request's budget).  Retryable by contract: the
    breaker re-probes after its cooldown, so a later identical request
    can succeed without operator action."""

    retryable = True

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        name: str | None = None,
        state: BreakerState | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.name = name
        self.state = state
        self.retry_after = retry_after


class _Unavailable:
    """Singleton marker for per-key unavailability in partial-mode
    reads.  Distinct from ``None`` (key absent) and falsy so naive
    truthiness checks fail closed."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unavailable>"

    def __bool__(self) -> bool:
        return False


#: The per-key marker partial-mode reads return for keys routed to an
#: unavailable shard.
UNAVAILABLE = _Unavailable()


class Deadline:
    """One monotonic-clock time budget shared by a whole request.

    ``budget=None`` means unbounded (used by ``processes=False``
    coordinators whose LocalHandle never blocks).
    """

    __slots__ = ("budget", "_expires", "_clock")

    def __init__(self, budget: float | None, *, clock=time.monotonic) -> None:
        if budget is not None and budget < 0:
            raise InvariantError(f"negative deadline budget {budget!r}")
        self.budget = budget
        self._clock = clock
        self._expires = None if budget is None else clock() + budget

    def remaining(self) -> float:
        if self._expires is None:
            return float("inf")
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def slice(self, cap: float) -> float:
        """A wait bounded by both ``cap`` and the remaining budget."""
        return max(0.0, min(cap, self.remaining()))


def _validate_response(frame) -> tuple:
    """Verify a response frame's shape before trusting its fields.

    The worker pipe delivers whatever the peer pickled; a crashed or
    version-skewed worker can flush garbage.  The frame must be
    ``(req_id: int, ok: bool, payload)``.
    """
    if (
        not isinstance(frame, tuple)
        or len(frame) != 3
        or isinstance(frame[0], bool)
        or not isinstance(frame[0], int)
        or not isinstance(frame[1], bool)
    ):
        raise ValueError(f"malformed response frame: {frame!r}")
    return frame


# ----------------------------------------------------------------------
# Sanctioned pipe receives (the CHK014 wrappers)
# ----------------------------------------------------------------------


def poll_frame(conn, timeout: float, who: str) -> bool:
    """Is a frame readable within ``timeout`` seconds?

    The only sanctioned ``Connection.poll`` in the sharding layer:
    callers pass a slice of their request :class:`Deadline`, so no
    wait is ever unbounded.
    """
    try:
        return conn.poll(timeout)
    except (OSError, BrokenPipeError) as exc:
        raise WorkerDied(f"{who}: worker pipe is broken: {exc}") from exc


def recv_frame(conn, who: str) -> tuple:
    """Receive one shape-validated ``(req_id, ok, payload)`` frame.

    The only sanctioned ``Connection.recv`` in the sharding layer;
    only ever called after :func:`poll_frame` said a frame is ready,
    so it never blocks.
    """
    try:
        return _validate_response(conn.recv())
    except (EOFError, OSError) as exc:
        raise WorkerDied(f"{who}: worker died mid-response: {exc}") from exc
    except ValueError as exc:
        raise WorkerDied(f"{who}: {exc}") from exc


def drain_stale(conn, who: str, on_heartbeat=None) -> None:
    """Discard buffered frames before a fresh request is sent.

    Anything readable *before* a new request id is issued is by
    construction stale: heartbeats (noted via ``on_heartbeat``), or a
    late response to a request whose deadline already expired -- the
    same frames ``recv`` would discard by id mismatch.  Draining here
    keeps a slow worker's pipe buffer from filling with heartbeats
    between requests.  A buffered startup-failure report means the
    worker is already dead; surface it as such.
    """
    while poll_frame(conn, 0.0, who):
        got, ok, payload = recv_frame(conn, who)
        if got == HEARTBEAT_RID:
            if on_heartbeat is not None:
                on_heartbeat()
            continue
        if got == STARTUP_RID and not ok:
            raise WorkerDied(f"{who}: worker startup failed: {payload!r}")
        # Stale response from an expired or abandoned request: drop.


# ----------------------------------------------------------------------
# Per-shard ledgers and the fleet supervisor
# ----------------------------------------------------------------------


@dataclass
class ShardLedger:
    """One shard's supervision history.

    Mutated only under the owning coordinator's lock.
    """

    name: str
    breaker: CircuitBreaker
    up: bool = True
    restarts: int = 0
    consecutive_failures: int = 0
    next_attempt_at: float = 0.0
    last_error: str = ""
    events: list = field(default_factory=list)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "up": self.up,
            "breaker": self.breaker.snapshot(),
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class FleetSupervisor:
    """Per-shard restart gating + aggregate health derivation.

    Owns no locks and spawns no threads: every method is called under
    the coordinator's lock, and the coordinator's background probe
    loop drives :meth:`probe_candidates`.  The injectable ``clock``
    makes backoff/cooldown schedules unit-testable.
    """

    def __init__(
        self,
        names,
        *,
        policy: RestartPolicy | None = None,
        clock=time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else RestartPolicy()
        self._clock = clock
        self.ledgers: list[ShardLedger] = [
            self._fresh_ledger(name) for name in names
        ]

    def _fresh_ledger(self, name: str) -> ShardLedger:
        return ShardLedger(
            name=name,
            breaker=CircuitBreaker(
                threshold=self.policy.budget,
                cooldown=self.policy.cooldown,
                clock=self._clock,
            ),
        )

    def ledger(self, index: int) -> ShardLedger:
        return self.ledgers[index]

    def splice(self, at: int, drop: int, names) -> None:
        """Mirror a rebalance: shards [at, at+drop) were replaced by
        fresh directories with fresh workers -- fresh ledgers too."""
        self.ledgers[at:at + drop] = [
            self._fresh_ledger(name) for name in names
        ]

    # -- gating --------------------------------------------------------

    def available(self, index: int) -> bool:
        """May requests be scattered to this shard right now?"""
        led = self.ledgers[index]
        return led.up and led.breaker.closed

    def authorize_restart(self, index: int) -> float:
        """Gate one restart attempt.

        Returns the backoff delay the caller must wait before
        spawning (0.0 for a first failure or a sanctioned probe).

        Raises:
            ShardUnavailableError: The breaker is OPEN and its
                cooldown has not elapsed -- the shard stays isolated.
        """
        led = self.ledgers[index]
        if not led.breaker.allow_attempt():
            raise ShardUnavailableError(
                f"shard {led.name} is isolated: circuit breaker OPEN "
                f"after {led.consecutive_failures} consecutive restart "
                f"failures ({led.last_error or 'unknown error'}); "
                f"probe in {led.breaker.cooldown_remaining():.2f}s",
                shard=index,
                name=led.name,
                state=led.breaker.state,
                retry_after=led.breaker.cooldown_remaining(),
            )
        return max(0.0, led.next_attempt_at - self._clock())

    # -- outcome bookkeeping -------------------------------------------

    def note_down(self, index: int, error: str) -> None:
        led = self.ledgers[index]
        led.up = False
        led.last_error = error
        led.events.append(("down", error))

    def note_attempt(self, index: int) -> None:
        led = self.ledgers[index]
        led.restarts += 1
        led.events.append(("restart", led.restarts))

    def note_failure(self, index: int, error: str) -> None:
        led = self.ledgers[index]
        led.up = False
        led.consecutive_failures += 1
        led.last_error = error
        led.breaker.record_failure()
        led.next_attempt_at = self._clock() + self.policy.backoff(
            led.consecutive_failures + 1
        )
        led.events.append(("restart-failed", error))

    def note_success(self, index: int) -> None:
        led = self.ledgers[index]
        led.up = True
        led.consecutive_failures = 0
        led.next_attempt_at = 0.0
        led.breaker.record_success()
        led.events.append(("up", led.restarts))

    # -- aggregate health ----------------------------------------------

    def target_health(self, alive=None) -> Health:
        """Derive the fleet's aggregate health from per-shard states.

        A shard counts unhealthy when its ledger says it is down, its
        breaker is not CLOSED, or -- when ``alive`` is provided -- its
        worker process is no longer running even though no request has
        noticed yet (the two-concurrent-kills case).
        """
        for index, led in enumerate(self.ledgers):
            if not led.up or not led.breaker.closed:
                return Health.DEGRADED
            if alive is not None and not alive(index):
                return Health.DEGRADED
        return Health.HEALTHY

    def probe_candidates(self) -> list[int]:
        """Shards the background supervisor should try to revive now:
        down, breaker willing (CLOSED, HALF_OPEN, or OPEN past its
        cooldown), and past their backoff delay."""
        now = self._clock()
        out = []
        for index, led in enumerate(self.ledgers):
            if led.up or led.next_attempt_at > now:
                continue
            breaker = led.breaker
            if breaker.state is BreakerState.OPEN and (
                breaker.cooldown_remaining() > 0.0
            ):
                continue
            out.append(index)
        return out

    def open_breakers(self) -> int:
        return sum(
            1 for led in self.ledgers if not led.breaker.closed
        )

    def status(self) -> list[dict]:
        return [led.snapshot() for led in self.ledgers]
