"""repro -- a reproduction of "DILI: A Distribution-Driven Learned Index".

Public surface:

* :class:`repro.DILI` / :class:`repro.DiliConfig` -- the paper's index.
* :class:`repro.ConcurrentDILI` -- the Appendix A.8 thread-safe wrapper.
* :class:`repro.DurableDILI` -- crash-safe persistence (WAL +
  checksummed snapshots + recovery, see :mod:`repro.durability`).
* :class:`repro.ResilientDILI` -- self-healing wrapper: fault
  detection, degraded-mode serving, and online repair
  (see :mod:`repro.resilience`; fault injection via :mod:`repro.faults`).
* :mod:`repro.baselines` -- every competitor of Section 7, from scratch.
* :mod:`repro.data` -- SOSD-shaped synthetic datasets.
* :mod:`repro.workloads` -- the paper's workload mixes and a runner.
* :mod:`repro.simulate` -- the cache/cycle cost model behind the tables.
* :mod:`repro.bench` -- the experiment harness regenerating each
  table/figure (see DESIGN.md for the per-experiment index).
"""

from repro.core.concurrent import ConcurrentDILI
from repro.core.dili import DILI, DiliConfig
from repro.core.mapping import DiliMap
from repro.durability import DurableDILI
from repro.resilience import ResilientDILI
from repro.core.stats import (
    MemoryBreakdown,
    TreeStats,
    describe,
    memory_breakdown,
    tree_stats,
)

__all__ = [
    "DILI",
    "DiliConfig",
    "DiliMap",
    "ConcurrentDILI",
    "DurableDILI",
    "ResilientDILI",
    "MemoryBreakdown",
    "TreeStats",
    "describe",
    "memory_breakdown",
    "tree_stats",
]
__version__ = "1.0.0"
