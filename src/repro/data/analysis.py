"""Dataset hardness analysis for learned indexes.

How well a learned index will do on a key set is a function of its CDF:
globally (can a shallow model hierarchy route into the right region?)
and locally (can a per-leaf linear model pin down exact positions?).
This module quantifies both, mirroring the measures the paper's
Section 7 discussion leans on ("the keys in both datasets are more
linearly or piecewise linearly distributed...").

The headline number, :func:`hardness_report`'s ``conflict_rate``, is a
direct estimate of DILI's Table 6 conflict column: the fraction of
adjacent key pairs whose model-predicted slots collide under the
paper's enlarging ratio eta = 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HardnessReport:
    """Summary of how hard a key set is for a learned index.

    Attributes:
        num_keys: Size of the analyzed set.
        global_rmse: Rank RMSE of the single best-fit line over all
            keys, as a fraction of the set size (0 = perfectly linear).
        segment_rmse: Mean rank RMSE of best-fit lines over fixed-size
            segments (the leaf-local difficulty).
        conflict_rate: Estimated fraction of keys that would collide
            with a neighbour in a 2x-enlarged, locally fitted entry
            array -- DILI's Table 6 conflicts, per key.
        gap_cv: Coefficient of variation of the key gaps (0 for a
            perfect arithmetic progression; ~1 for a Poisson process).
        tail_ratio: Key-range share of the top 1% of keys; large values
            mean heavy tails that defeat global models.
    """

    num_keys: int
    global_rmse: float
    segment_rmse: float
    conflict_rate: float
    gap_cv: float
    tail_ratio: float


def _rank_rmse(keys: np.ndarray) -> float:
    """RMSE (in ranks) of the least-squares line over (key, rank)."""
    n = len(keys)
    if n < 2:
        return 0.0
    ranks = np.arange(n, dtype=np.float64)
    mx = keys.mean()
    my = ranks.mean()
    dx = keys - mx
    sxx = float(dx @ dx)
    if sxx <= 0.0:
        return 0.0
    slope = float(dx @ (ranks - my)) / sxx
    err = ranks - (my + slope * dx)
    return float(np.sqrt(np.mean(err * err)))


def segment_rmse_profile(
    keys: np.ndarray, segment_size: int = 4096
) -> np.ndarray:
    """Per-segment rank RMSE over consecutive fixed-size segments.

    ``segment_size`` defaults to the paper's fanout cap omega, so each
    value approximates one would-be DILI leaf's model error.
    """
    keys = np.asarray(keys, dtype=np.float64)
    out = []
    for start in range(0, len(keys), segment_size):
        out.append(_rank_rmse(keys[start:start + segment_size]))
    return np.array(out)


def estimate_conflict_rate(
    keys: np.ndarray, enlarge: float = 2.0, segment_size: int = 4096
) -> float:
    """Estimated DILI leaf-conflict rate under enlarging ratio ``eta``.

    Within each segment, fits the segment's rank line stretched over
    ``enlarge * n`` slots and counts adjacent keys whose floored slot
    predictions coincide -- exactly the collision condition of
    Algorithm 5, without building the index.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = len(keys)
    if n < 2:
        return 0.0
    conflicts = 0
    for start in range(0, n, segment_size):
        seg = keys[start:start + segment_size]
        m = len(seg)
        if m < 2:
            continue
        ranks = np.arange(m, dtype=np.float64)
        mx = seg.mean()
        dx = seg - mx
        sxx = float(dx @ dx)
        if sxx <= 0.0:
            conflicts += m - 1
            continue
        slope = float(dx @ (ranks - ranks.mean())) / sxx
        intercept = ranks.mean() - slope * mx
        fanout = max(2, int(np.ceil(enlarge * m)))
        scale = fanout / m
        pred = np.floor((intercept + slope * seg) * scale)
        np.clip(pred, 0, fanout - 1, out=pred)
        conflicts += int(np.sum(np.diff(pred) == 0))
    return conflicts / n


def hardness_report(
    keys: np.ndarray, segment_size: int = 4096
) -> HardnessReport:
    """Compute the full :class:`HardnessReport` for a key set."""
    keys = np.asarray(keys, dtype=np.float64)
    n = len(keys)
    if n < 2:
        return HardnessReport(n, 0.0, 0.0, 0.0, 0.0, 0.0)
    gaps = np.diff(keys)
    mean_gap = float(gaps.mean())
    gap_cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
    p99 = keys[int(0.99 * (n - 1))]
    span = float(keys[-1] - keys[0])
    tail_ratio = float((keys[-1] - p99) / span) if span > 0 else 0.0
    seg = segment_rmse_profile(keys, segment_size)
    return HardnessReport(
        num_keys=n,
        global_rmse=_rank_rmse(keys) / n,
        segment_rmse=float(seg.mean()) if len(seg) else 0.0,
        conflict_rate=estimate_conflict_rate(
            keys, segment_size=segment_size
        ),
        gap_cv=gap_cv,
        tail_ratio=tail_ratio,
    )
