"""Generators for the five evaluation datasets (Section 7.1).

Each function mimics the CDF shape that makes its namesake easy or hard
for learned indexes.  Two properties matter:

1. **Global shape** -- tails and clusters that defeat coarse models
   (FB's extreme outliers, OSM's Morton-code staircase).
2. **Local gap regularity** -- the paper's real datasets are *dense
   integer* sets: at 200M keys the lognormal core and the WikiTS
   second-grid saturate, so consecutive keys differ by a near-constant
   integer gap and leaf models predict almost perfectly (Logn has only
   1.2 conflicts per 1K keys in Table 6).  Naive synthetic data with
   exponential (Poisson-process) gaps conflicts ~39% of the time no
   matter how smooth its CDF looks, which would bury the per-dataset
   differences the paper reports.

The generators therefore build each dataset at *saturation density*
(dense integer cores, quantized gaps) and then multiply all keys by a
constant: least-squares fits, slot predictions and conflicts are exactly
invariant under that scaling, while key magnitudes stay realistic.

All generators return sorted, unique, integer-valued float64 arrays with
keys below 2**52, so every key is exactly representable and every pair
of keys is separable by a float64 linear model.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable

import numpy as np

MAX_KEY = float(2**52)
"""Keys stay below 2**52 (< 2**53) so float64 arithmetic is exact."""

_SCALE = 2048
"""Constant multiplier applied to every dataset: keeps key magnitudes
realistic without changing gap structure (affine invariance)."""


def _decimate(keys: np.ndarray, n: int) -> np.ndarray:
    """Systematically thin ``keys`` to exactly ``n`` elements.

    Systematic (equally spaced) decimation preserves local gap
    regularity -- random subsampling would re-introduce the geometric
    gap noise the saturated construction is designed to avoid.
    """
    if len(keys) < n:
        raise ValueError(
            f"generator produced {len(keys)} unique keys, needs {n}; "
            "increase the oversampling factor"
        )
    if len(keys) == n:
        return keys
    idx = np.linspace(0, len(keys) - 1, n).astype(np.int64)
    return keys[idx]


def _finalize(raw: np.ndarray, n: int) -> np.ndarray:
    """Round, deduplicate, decimate to ``n`` and scale into key range."""
    keys = np.unique(np.floor(raw))
    keys = _decimate(keys, n)
    keys = keys * _SCALE
    if keys[0] < 0 or keys[-1] > MAX_KEY:
        raise ValueError("generated keys escaped [0, 2**52]")
    return keys.astype(np.float64)


def fb_like(n: int, seed: int = 0) -> np.ndarray:
    """FB-shaped ids: long dense allocation runs alternating with sparse
    Poisson-gap stretches, plus extreme outliers.

    Facebook user ids interleave densely allocated id ranges with sparse
    random regions and a sliver of huge outliers; the sparse half defeats
    leaf models (highest conflict rate in Table 6, 227 per 1K) and the
    tail defeats global ones.
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.05)
    parts = []
    produced = 0
    cursor = 0.0
    while produced < m:
        seg = int(rng.integers(max(m // 20, 2), max(m // 7, 4)))
        seg = min(seg, m - produced)
        if rng.random() < 0.5:
            # Dense run: consecutive integer ids.
            part = cursor + np.arange(seg, dtype=np.float64)
        else:
            # Sparse stretch: Poisson gaps with a random mean density.
            mean_gap = float(rng.uniform(3.0, 40.0))
            gaps = np.maximum(
                np.floor(rng.exponential(mean_gap, size=seg)), 1.0
            )
            part = cursor + np.cumsum(gaps)
        cursor = float(part[-1]) + float(rng.integers(10, 10000))
        parts.append(part)
        produced += seg
    body = np.concatenate(parts)
    # Heavy tail: 0.2% of ids up to ~16x beyond the body -- enough to
    # defeat global models, but (like the real dataset) not so extreme
    # that equal-width partitioning strands the whole body in one child.
    n_tail = max(int(m * 0.002), 4)
    lo_exp = np.log2(max(cursor, 2.0))
    tail = np.floor(
        2.0 ** rng.uniform(lo_exp + 0.5, min(lo_exp + 4.0, 41.0), size=n_tail)
    )
    return _finalize(np.concatenate([body, tail]), n)


def wikits_like(n: int, seed: int = 0) -> np.ndarray:
    """WikiTS-shaped timestamps: a nearly saturated integer time grid.

    Request timestamps quantized to seconds cover almost every second,
    so gaps are mostly exactly 1 with occasional quiet stretches; daily
    modulation moves the miss probability.  Easy for learned indexes
    (44 conflicts per 1K in Table 6).
    """
    rng = np.random.default_rng(seed)
    m = int(n * 1.3)
    t = np.arange(m)
    period = max(m // 48, 2)
    # Probability of skipping ahead varies with the "daily" cycle.
    quiet = 0.10 * (1.0 + np.sin(2 * np.pi * t / period))
    extra = rng.random(m) < quiet
    gaps = np.ones(m)
    gaps[extra] += rng.geometric(0.4, size=int(extra.sum()))
    keys = 4.0e8 + np.cumsum(gaps)
    return _finalize(keys, n)


def osm_like(n: int, seed: int = 0) -> np.ndarray:
    """OSM-shaped cell ids: Morton codes of clustered 2-D points.

    Most clusters are fully populated axis-aligned blocks whose Morton
    codes form regular staircases; a minority are sparse random scatters
    whose codes are rough.  Moderately hard (118 conflicts per 1K)."""
    rng = np.random.default_rng(seed)
    m = int(n * 1.3)
    n_clusters = max(12, m // 8000)
    # Cluster populations follow a power law (cities vs villages): the
    # coarse density varies by orders of magnitude, which a single
    # global model cannot track but distribution-driven partitioning can.
    weights = rng.pareto(1.0, size=n_clusters) + 0.2
    weights /= weights.sum()
    populations = np.maximum((weights * m).astype(np.int64), 64)
    per = int(np.mean(populations))
    side = max(int(np.sqrt(per)), 2)
    # Coordinate space sized so clusters tile a meaningful fraction of
    # it (real OSM covers the planet densely at coarse scale); a huge
    # empty space would strand all mass in one equal-width child.
    coord_bits = max(10, int(side * n_clusters * 4).bit_length())
    coord_bits = min(coord_bits, 20)
    coord_max = 2**coord_bits
    parts = []
    for pop in populations:
        cluster_side = max(int(np.sqrt(pop)), 2)
        align = 1 << max(cluster_side - 1, 1).bit_length()
        bx = int(rng.integers(0, max(coord_max // align - 1, 1))) * align
        by = int(rng.integers(0, max(coord_max // align - 1, 1))) * align
        kind = rng.random()
        if kind < 0.4:
            # Aligned dense block: near-contiguous Morton range.
            xs = bx + np.arange(cluster_side)
            ys = by + np.arange(cluster_side)
            gx, gy = np.meshgrid(xs, ys)
            px, py = gx.ravel(), gy.ravel()
        elif kind < 0.7:
            # Unaligned dense block: piecewise-contiguous Morton runs
            # with multi-scale jumps -- rough for one global model.
            off = int(rng.integers(1, align))
            xs = bx + off + np.arange(cluster_side)
            ys = by + off + np.arange(cluster_side)
            gx, gy = np.meshgrid(xs, ys)
            px, py = gx.ravel(), gy.ravel()
        else:
            # Sparse scatter around the block.
            px = rng.integers(bx, bx + 8 * cluster_side, size=int(pop))
            py = rng.integers(by, by + 8 * cluster_side, size=int(pop))
        parts.append(
            _morton_interleave(px.astype(np.uint64), py.astype(np.uint64))
        )
    raw = np.unique(np.concatenate(parts)).astype(np.float64)
    raw = raw[raw * _SCALE <= MAX_KEY]
    return _finalize(raw, n)


def books_like(n: int, seed: int = 0) -> np.ndarray:
    """Books-shaped ids: power-law-gap stretches with dense bursts.

    Amazon book ids mix contiguous allocation bursts with stretches of
    heavy-tail (Pareto) gaps; hard for leaf models (220 conflicts per
    1K in Table 6), though without FB's extreme global outliers."""
    rng = np.random.default_rng(seed)
    m = int(n * 1.05)
    parts = []
    produced = 0
    cursor = 0.0
    while produced < m:
        seg = int(rng.integers(max(m // 30, 2), max(m // 10, 4)))
        seg = min(seg, m - produced)
        if rng.random() < 0.4:
            part = cursor + np.arange(seg, dtype=np.float64)
        else:
            gaps = np.floor(rng.pareto(1.2, size=seg) * 8.0) + 1.0
            gaps = np.minimum(gaps, 1e6)
            part = cursor + np.cumsum(gaps)
        cursor = float(part[-1]) + rng.integers(100, 5000)
        parts.append(part)
        produced += seg
    return _finalize(np.concatenate(parts), n)


def lognormal(n: int, seed: int = 0) -> np.ndarray:
    """The paper's Logn dataset: lognormal(mu=0, sigma=1), saturated.

    Sampling far past saturation makes the distribution core cover every
    integer, reproducing the near-zero conflict rate of Table 6 (1.2 per
    1K); only the sparse tail contributes conflicts.  Keys are scaled up
    afterwards (the paper multiplies by 1e9; any constant gives
    identical index behaviour)."""
    rng = np.random.default_rng(seed)
    scale = n / 3.0
    raw = rng.lognormal(mean=0.0, sigma=1.0, size=12 * n) * scale
    return _finalize(raw, n)


def _morton_interleave(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Interleave the low 20 bits of two coordinate arrays (Z-order)."""

    def spread_bits(v: np.ndarray) -> np.ndarray:
        v = v.astype(np.uint64) & np.uint64((1 << 20) - 1)
        v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
        v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
        v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
        v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
        return v

    return spread_bits(xs) | (spread_bits(ys) << np.uint64(1))


DATASET_NAMES: dict[str, Callable[[int, int], np.ndarray]] = {
    "fb": fb_like,
    "wikits": wikits_like,
    "osm": osm_like,
    "books": books_like,
    "logn": lognormal,
}
"""Registry keyed by the names the paper's tables use."""


_DATASET_CACHE: dict[tuple, np.ndarray] = {}
"""Memo of generated datasets keyed by (name, n, seed, mmap_mode).

Generation costs seconds at benchmark scales and every benchmark file
asks for the same five (name, n, seed) combinations, so the arrays are
built once per process.  Cached arrays are returned *shared* and marked
read-only -- callers that need a mutable copy must ``.copy()``."""


def dataset_cache_dir() -> str:
    """Directory for on-disk ``.npy`` dataset materializations.

    Override with ``REPRO_DATASET_CACHE``; defaults to a per-user
    subdirectory of the system temp dir so unrelated users never share
    (or fight over) cache files.
    """
    configured = os.environ.get("REPRO_DATASET_CACHE")
    if configured:
        return configured
    return os.path.join(
        tempfile.gettempdir(), f"repro-datasets-{os.getuid()}"
    )


def _materialize(name: str, n: int, seed: int, keys: np.ndarray) -> str:
    """Write ``keys`` to the on-disk cache atomically, once.

    Concurrent processes may race to create the same file; the
    write-to-temp + ``os.replace`` dance makes the race harmless (last
    writer wins with identical deterministic bytes, readers only ever
    see a complete file).
    """
    cache_dir = dataset_cache_dir()
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"{name}-{n}-{seed}.npy")
    if os.path.exists(path):
        return path
    fd, tmp = tempfile.mkstemp(
        prefix=f"{name}-{n}-{seed}-", suffix=".npy.tmp", dir=cache_dir
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.save(fh, keys, allow_pickle=False)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_dataset(
    name: str, n: int, seed: int = 0, *, mmap_mode: str | None = None
) -> np.ndarray:
    """Generate dataset ``name`` with ``n`` unique sorted keys.

    Results are memoized per ``(name, n, seed)`` and returned as shared
    read-only arrays; call ``.copy()`` before mutating one.

    Args:
        mmap_mode: ``None`` (default) keeps the in-process memo.
            ``"r"`` materializes the array once into an on-disk
            ``.npy`` cache (see :func:`dataset_cache_dir`) and returns
            a read-only ``np.memmap`` view -- the multi-process path:
            shard worker processes mapping the same file share one
            page-cache copy instead of each regenerating and holding a
            private array.  Writable mmap modes are rejected.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(
            f"mmap_mode must be None or 'r', got {mmap_mode!r}; "
            "dataset caches are shared and must stay immutable"
        )
    cache_key = (name, n, seed, mmap_mode)
    cached = _DATASET_CACHE.get(cache_key)
    if cached is not None:
        return cached
    try:
        generator = DATASET_NAMES[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_NAMES)}"
        ) from None
    if mmap_mode == "r":
        path = os.path.join(
            dataset_cache_dir(), f"{name}-{n}-{seed}.npy"
        )
        if not os.path.exists(path):
            # Reuse the in-memory memo when present: same bytes, and
            # the generation cost is paid at most once per process.
            keys = load_dataset(name, n, seed)
            path = _materialize(name, n, seed, keys)
        out = np.load(path, mmap_mode="r", allow_pickle=False)
    else:
        out = generator(n, seed)
        out.flags.writeable = False
    _DATASET_CACHE[cache_key] = out
    return out
