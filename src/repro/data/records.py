"""Record packing helpers (Section 7.1, "Datasets").

The paper associates each key with a random integer, packs them as a
simulated record into a data array, and indexes (key, address) pairs.
Payload values here play the role of those record addresses.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import MAX_KEY


def prepare_keys(raw: np.ndarray | list) -> np.ndarray:
    """Sort, deduplicate and validate an arbitrary key array.

    Returns a strictly increasing float64 array suitable for every index
    in this repository.  Raises if any key falls outside [0, 2**52],
    where float64 integer arithmetic stops being exact.
    """
    keys = np.unique(np.asarray(raw, dtype=np.float64))
    if len(keys) and (keys[0] < 0 or keys[-1] > MAX_KEY):
        raise ValueError(
            f"keys must lie in [0, {int(MAX_KEY)}], got "
            f"[{keys[0]}, {keys[-1]}]"
        )
    return keys


def make_payloads(n: int, seed: int = 0) -> np.ndarray:
    """Random integer payloads standing in for record addresses."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**31, size=n)


def split_initial(
    keys: np.ndarray, fraction: float = 0.5, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random split into (P0, P1) as the workload experiments require.

    Section 7.3: "we randomly select 50% of the pairs as the initial
    dataset P0; the other 50% of P is named P1" -- indexes are bulk
    loaded on P0 and the P1 keys are inserted during the workload.
    Both halves are returned sorted.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n0 = int(len(keys) * fraction)
    picked = rng.permutation(len(keys))
    initial = np.sort(keys[picked[:n0]])
    rest = np.sort(keys[picked[n0:]])
    return initial, rest
