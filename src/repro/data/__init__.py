"""Synthetic datasets shaped like the paper's evaluation data.

The paper evaluates on four SOSD datasets (FB, WikiTS, OSM, Books) and a
synthetic lognormal set.  The real files are hundreds of millions of
uint64 keys behind download links; this package generates smaller
synthetic stand-ins whose *CDF shapes* -- the property that decides how
hard a dataset is for a learned index -- mimic each original.  See
DESIGN.md ("Substitutions") for the rationale per dataset.

All generators return sorted, unique, integer-valued float64 arrays with
keys below 2**53, so every key is exactly representable and every pair of
keys is separable by a float64 linear model.
"""

from repro.data.analysis import (
    HardnessReport,
    estimate_conflict_rate,
    hardness_report,
    segment_rmse_profile,
)
from repro.data.datasets import (
    DATASET_NAMES,
    books_like,
    fb_like,
    load_dataset,
    lognormal,
    osm_like,
    wikits_like,
)
from repro.data.records import make_payloads, prepare_keys, split_initial

__all__ = [
    "DATASET_NAMES",
    "HardnessReport",
    "books_like",
    "estimate_conflict_rate",
    "fb_like",
    "hardness_report",
    "segment_rmse_profile",
    "load_dataset",
    "lognormal",
    "make_payloads",
    "osm_like",
    "prepare_keys",
    "split_initial",
    "wikits_like",
]
