"""Self-healing resilience layer: faults, repair, degraded serving, chaos.

Four cooperating pieces (see ``docs/resilience.md``):

* :mod:`repro.resilience.faults` -- process-wide fault registry
  (importable as :mod:`repro.faults`): detectability-verified
  corruption of plan cells, node models, pair slots, dense arrays,
  stripe locks, plus the memoized durability crash-point injectors.
* :mod:`repro.resilience.repair` -- the online repair engine:
  sanitizer finding -> containing subtree -> quarantine -> bulk-load-
  identical rebuild from authority -> scoped re-verification.
* :mod:`repro.resilience.serving` -- :class:`ResilientDILI`, the
  degraded-mode wrapper whose read path falls back flat plan ->
  scalar tree -> authoritative table and never answers wrong.
* :mod:`repro.resilience.chaos` -- the seeded whole-stack chaos
  harness (``repro chaos``) asserting the contract end to end, with
  :mod:`repro.resilience.oracle` providing the repaired-vs-fresh
  bit-identity check.

Everything is exported lazily: the fault/chaos machinery imports
benchmark-style dependencies the hot path never needs.
"""

from __future__ import annotations

from repro.resilience.health import Health, HealthMonitor

_LAZY = {
    "FaultRegistry": ("repro.resilience.faults", "FaultRegistry"),
    "FaultReport": ("repro.resilience.faults", "FaultReport"),
    "FaultSchedule": ("repro.resilience.faults", "FaultSchedule"),
    "StallingLock": ("repro.resilience.faults", "StallingLock"),
    "TREE_FAULT_KINDS": ("repro.resilience.faults", "TREE_FAULT_KINDS"),
    "RepairEngine": ("repro.resilience.repair", "RepairEngine"),
    "RepairTicket": ("repro.resilience.repair", "RepairTicket"),
    "Finding": ("repro.resilience.repair", "Finding"),
    "PairTable": ("repro.resilience.serving", "PairTable"),
    "ResilientDILI": ("repro.resilience.serving", "ResilientDILI"),
    "ChaosReport": ("repro.resilience.chaos", "ChaosReport"),
    "run_chaos": ("repro.resilience.chaos", "run_chaos"),
    "run_lock_chaos": ("repro.resilience.chaos", "run_lock_chaos"),
    "tree_signature": ("repro.resilience.oracle", "tree_signature"),
    "trees_identical": ("repro.resilience.oracle", "trees_identical"),
    "diff_trees": ("repro.resilience.oracle", "diff_trees"),
    "simulated_cost": ("repro.resilience.oracle", "simulated_cost"),
}

__all__ = ["Health", "HealthMonitor", *_LAZY]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.resilience' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), attr)
