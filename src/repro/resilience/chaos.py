"""Whole-stack chaos harness: mixed workload under scheduled faults.

:func:`run_chaos` drives a :class:`~repro.resilience.serving.ResilientDILI`
through a seeded 50/50 read/write workload while a seeded
:class:`~repro.resilience.faults.FaultSchedule` corrupts the serving
structures mid-flight (one live fault at a time -- a new injection
waits for the index to return to HEALTHY, like real incidents queue
behind an ongoing repair).  Throughout the run it checks the
resilience contract:

* **zero wrong reads** -- every answer, healthy or degraded, matches a
  model dict maintained alongside the workload;
* **every injection detected** -- the scan that follows an injection
  must open at least one ticket;
* **repair is online and scoped** -- health converges back to HEALTHY
  through ``repair_step`` units, and the engine's ``full_rebuilds``
  counter stays zero;
* **no false positives** -- periodic scans while HEALTHY must find
  nothing;
* **clean convergence** -- the run ends HEALTHY with
  ``ResilientDILI.verify()`` passing and the index content equal to
  the model dict.

:func:`run_lock_chaos` is the concurrency leg: it exercises
``ConcurrentDILI``'s verified lock acquisition under a stalled stripe
(:class:`~repro.resilience.faults.StallingLock`) and the empty-tree
escalation path, returning the wrapper's ``lock_stats``.

Both entry points are deterministic per seed and are what the CLI
(``repro chaos``), the resilience test suite, and the CI ``chaos`` job
run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.concurrent import ConcurrentDILI
from repro.data import load_dataset
from repro.resilience.faults import (
    TREE_FAULT_KINDS,
    FaultRegistry,
    FaultSchedule,
    stall_stripe,
    unstall_stripe,
)
from repro.resilience.health import Health
from repro.resilience.serving import ResilientDILI

__all__ = ["ChaosReport", "run_chaos", "run_lock_chaos"]


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` invocation."""

    num_keys: int
    rounds: int
    reads: int = 0
    writes: int = 0
    wrong_reads: int = 0
    injected: list = field(default_factory=list)  # [(round, kind), ...]
    undetected: int = 0
    false_positives: int = 0
    repair_steps: int = 0
    max_steps_degraded: int = 0
    plan_splices: int = 0
    plan_drops: int = 0
    full_rebuilds: int = 0
    final_health: str = ""
    verify_clean: bool = False
    content_clean: bool = False
    lock_stats: dict | None = None
    wall_s: float = 0.0

    @property
    def kinds_injected(self) -> set:
        return {kind for _, kind in self.injected}

    @property
    def ok(self) -> bool:
        """The whole resilience contract, as one boolean."""
        return (
            self.wrong_reads == 0
            and self.undetected == 0
            and self.false_positives == 0
            and self.full_rebuilds == 0
            and self.final_health == "healthy"
            and self.verify_clean
            and self.content_clean
        )


def run_chaos(
    *,
    num_keys: int = 20_000,
    rounds: int = 60,
    batch: int = 256,
    write_fraction: float = 0.5,
    injections: int = 12,
    kinds: tuple[str, ...] = TREE_FAULT_KINDS,
    seed: int = 0,
    with_locks: bool = True,
    log=None,
) -> ChaosReport:
    """Run the chaos workload; returns a :class:`ChaosReport`.

    Args:
        num_keys: Initial bulk-loaded keys (an equal-sized disjoint
            pool feeds the insert stream).
        rounds: Workload rounds; each issues one read batch and one
            write batch and advances any ongoing repair.
        batch: Operations per batch.
        write_fraction: Fraction of write rounds that actually issue
            the write batch (0.5 gives the 50/50 mix).
        injections: Scheduled fault count (>= len(kinds) so every kind
            fires at least once).
        kinds: Fault kinds to schedule.
        seed: Master seed for dataset, schedule, and workload draws.
        with_locks: Also run :func:`run_lock_chaos` and attach its
            ``lock_stats``.
        log: Optional ``print``-like callable for progress lines.
    """
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    universe = load_dataset("logn", 2 * num_keys, seed=seed)
    initial = universe[::2].copy()
    pool_keys = universe[1::2].tolist()
    rng.shuffle(pool_keys)
    pool = deque(pool_keys)

    index = ResilientDILI()
    values = [int(i) for i in range(len(initial))]
    index.bulk_load(initial, values)
    model = dict(zip(initial.tolist(), values))
    index.get_batch(initial[:batch])  # compile + warm the flat plan

    schedule = FaultSchedule.random(
        rounds=rounds, injections=injections, kinds=kinds, seed=seed
    )
    by_round: dict[int, list[str]] = {}
    for when, kind in schedule.events:
        by_round.setdefault(int(when), []).append(kind)
    pending: deque[str] = deque()
    registry = FaultRegistry()
    report = ChaosReport(num_keys=num_keys, rounds=rounds)
    next_value = len(initial)
    degraded_streak = 0

    for r in range(rounds):
        pending.extend(by_round.get(r, ()))

        # -- injection: one live fault at a time, like queued incidents
        if pending and index.health is Health.HEALTHY:
            kind = pending.popleft()
            fault = registry.inject(kind, index.index, rng)
            if fault is None:
                fault = registry.inject_any(index.index, rng, kinds)
            if fault is not None:
                report.injected.append((r, fault.kind))
                if index.detect() < 1:
                    report.undetected += 1
                if log is not None:
                    log(
                        f"round {r:3d}: injected {fault.kind} -> "
                        f"{index.health.value} "
                        f"({len(index.engine.tickets)} ticket(s))"
                    )
        elif index.health is Health.HEALTHY and r % 10 == 5:
            # Periodic scan while clean: must find nothing.
            report.false_positives += index.detect()

        # -- reads: half present keys, half probes that may miss
        model_keys = np.fromiter(model, dtype=np.float64, count=len(model))
        sample = rng.choice(model_keys, size=batch // 2, replace=False)
        misses = rng.uniform(
            float(universe[0]), float(universe[-1]), size=batch // 2
        )
        read_keys = np.concatenate([sample, misses])
        got = index.get_batch(read_keys)
        for k, actual in zip(read_keys.tolist(), got):
            expect = model.get(k)
            if actual is not expect and actual != expect:
                report.wrong_reads += 1
        report.reads += len(read_keys)

        # -- writes: inserts of fresh keys, deletes, updates
        if rng.random() < write_fraction:
            third = batch // 3
            ins_keys = [pool.popleft() for _ in range(min(third, len(pool)))]
            ins_vals = list(range(next_value, next_value + len(ins_keys)))
            next_value += len(ins_keys)
            del_keys = rng.choice(
                model_keys, size=min(third, len(model_keys)), replace=False
            ).tolist()
            survivors = [k for k in model if k not in set(del_keys)]
            upd_keys = [
                survivors[int(i)]
                for i in rng.integers(len(survivors), size=third)
            ] if survivors else []
            upd_vals = list(range(next_value, next_value + len(upd_keys)))
            next_value += len(upd_keys)

            ok = index.insert_batch(np.array(ins_keys), ins_vals)
            for i in np.flatnonzero(ok):
                model[float(ins_keys[int(i)])] = ins_vals[int(i)]
            ok = index.delete_batch(np.array(del_keys))
            for i in np.flatnonzero(ok):
                model.pop(float(del_keys[int(i)]), None)
            if upd_keys:
                ok = index.update_batch(np.array(upd_keys), upd_vals)
                for i in np.flatnonzero(ok):
                    model[float(upd_keys[int(i)])] = upd_vals[int(i)]
            report.writes += len(ins_keys) + len(del_keys) + len(upd_keys)

        # -- repair: one bounded step per round keeps serving live
        if index.health is not Health.HEALTHY:
            degraded_streak += 1
            report.max_steps_degraded = max(
                report.max_steps_degraded, degraded_streak
            )
            if index.repair_step():
                report.repair_steps += 1
        else:
            degraded_streak = 0

    # -- convergence: drain any tail repair, then deep-verify
    report.repair_steps += index.repair_all()
    report.final_health = index.health.value
    try:
        index.verify()
        report.verify_clean = True
    except AssertionError:
        report.verify_clean = False
    expect_keys = np.fromiter(
        sorted(model), dtype=np.float64, count=len(model)
    )
    got = index.get_batch(expect_keys) if len(expect_keys) else []
    report.content_clean = len(index) == len(model) and all(
        actual == model[k] for k, actual in zip(expect_keys.tolist(), got)
    )
    stats = index.stats()
    report.plan_splices = stats["plan_splices"]
    report.plan_drops = stats["plan_drops"]
    report.full_rebuilds = stats["full_rebuilds"]

    if with_locks:
        report.lock_stats = run_lock_chaos(seed=seed)
    report.wall_s = time.perf_counter() - t0
    return report


def run_lock_chaos(
    *,
    seed: int = 0,
    num_keys: int = 2_000,
    threads: int = 4,
    ops_per_thread: int = 200,
    stall_s: float = 2e-4,
) -> dict:
    """Concurrency chaos: stalled stripe, escalation, lock-free reads.

    Exercises the paths :class:`ConcurrentDILI`'s ``lock_stats``
    instruments: the deterministic empty-tree escalation (first insert
    finds no leaf to lock and must take :meth:`exclusive`), verified
    acquisition under a :class:`StallingLock`-delayed stripe with
    concurrent rebuild pressure, and the epoch-pinned lock-free
    ``get_batch`` path racing those writers -- every batch answer for
    a never-deleted base key must resolve (its original value or a
    writer's), or the snapshot was torn.  Returns the final
    ``lock_stats`` (including ``plan_publishes`` / ``plans_retired`` /
    ``epoch_pins``) plus ``stalls`` and ``batch_reads``.
    """
    from repro.check.errors import InvariantError

    rng = np.random.default_rng(seed)
    cc = ConcurrentDILI()
    # Empty tree: descent finds no leaf, locked() must escalate.
    cc.insert(1.0, "first")
    if cc.lock_stats["escalations"] < 1:
        raise InvariantError(
            "empty-tree insert did not escalate to exclusive locking"
        )

    keys = load_dataset("logn", num_keys, seed=seed + 1)
    cc.bulk_load(keys, list(range(num_keys)))
    cc.get_batch(keys[:8])  # compile + publish the plan
    wrapper = stall_stripe(cc, 0, stall_s)
    errors: list[BaseException] = []
    batch_reads = [0]

    def worker(worker_seed: int) -> None:
        wrng = np.random.default_rng(worker_seed)
        try:
            for _ in range(ops_per_thread):
                key = float(wrng.choice(keys))
                op = wrng.random()
                if op < 0.35:
                    cc.get(key)
                elif op < 0.6:
                    # Lock-free batch read racing the writers below:
                    # base keys are never deleted, so every answer must
                    # resolve in whatever published snapshot we pinned.
                    probe = wrng.choice(keys, size=16)
                    got = cc.get_batch(probe)
                    if any(v is None for v in got):
                        raise InvariantError(
                            "lock-free get_batch lost a base key: "
                            "torn or stale-beyond-publication snapshot"
                        )
                    batch_reads[0] += 1
                elif op < 0.8:
                    cc.update(key, "touched")
                else:
                    # Rebuild pressure: exactly the race verified
                    # acquisition exists for.
                    cc.bulk_insert(
                        wrng.uniform(keys[0], keys[-1], size=4),
                        ["chaos"] * 4,
                        rebuild_ratio=0.0,
                    )
        except BaseException as exc:  # surfaced by the caller
            errors.append(exc)

    pool = [
        threading.Thread(target=worker, args=(int(rng.integers(2**31)),))
        for _ in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    unstall_stripe(cc, 0, wrapper)
    if errors:
        raise errors[0]
    stats = dict(cc.lock_stats)
    if stats["plan_publishes"] < 1 or stats["epoch_pins"] < 1:
        raise InvariantError(
            "lock-free read path never engaged: no plan publication or "
            "epoch pin was recorded"
        )
    stats["stalls"] = wrapper.stalls
    stats["batch_reads"] = batch_reads[0]
    return stats
