"""Degraded-mode serving: never answer wrong, even mid-repair.

:class:`ResilientDILI` wraps a :class:`repro.core.dili.DILI` together
with an authoritative :class:`PairTable` (sorted key array + parallel
values -- the same ground truth a rebuild would bulk-load from) and the
repair machinery of :mod:`repro.resilience.repair`.  The read path is a
fallback chain keyed on health:

* **HEALTHY** -- serve normally: scalar gets descend the tree, batch
  gets use the compiled flat plan.
* **DEGRADED / REPAIRING** -- the flat plan is never consulted.
  Keys outside every quarantined subtree descend the scalar tree
  (trusted: damage is localized and quarantine membership is decided
  by the same descent); keys inside fall back to binary search of the
  authoritative table, which is correct by construction.

Writes follow the same split: quarantined keys are applied to the
authoritative table only (and recorded on their ticket -- the rebuild
pulls them in for free, since it rebuilds from authority), everything
else goes through the index normally and is mirrored into the table.
The table is therefore always the union of every committed write, which
is what makes "zero wrong reads" checkable against a model dict in the
chaos harness.
"""

from __future__ import annotations

import numpy as np

from repro.check import verify_tree
from repro.check.errors import InvariantError
from repro.core.dili import DILI, DiliConfig
from repro.resilience.health import Health, HealthMonitor
from repro.resilience.repair import RepairEngine

__all__ = ["PairTable", "ResilientDILI"]


class PairTable:
    """Authoritative sorted pair storage (binary-search read path).

    The last rung of the degraded-read fallback chain and the source
    rebuilds restore from.  Deliberately the simplest structure that
    can be correct: one sorted float64 key array plus a parallel value
    list, updated with ``searchsorted`` + O(n) splices.  It holds no
    models, no slots and no compiled state, so no index fault can
    damage it.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.float64)
        self._values: list = []

    # -- reads ---------------------------------------------------------

    @property
    def keys(self) -> np.ndarray:
        """The sorted key array (not a copy; treat as read-only)."""
        return self._keys

    @property
    def values(self) -> list:
        """Values parallel to :attr:`keys` (not a copy)."""
        return self._values

    def __len__(self) -> int:
        return len(self._keys)

    def _locate(self, key: float) -> int:
        """Index of ``key`` in the table, or -1."""
        pos = int(np.searchsorted(self._keys, key, side="left"))
        if pos < len(self._keys) and self._keys[pos] == key:
            return pos
        return -1

    def get(self, key: float) -> object | None:
        pos = self._locate(float(key))
        return None if pos < 0 else self._values[pos]

    def __contains__(self, key: float) -> bool:
        return self._locate(float(key)) >= 0

    def items(self) -> list:
        return list(zip(self._keys.tolist(), self._values))

    # -- writes --------------------------------------------------------

    def bulk_set(self, keys: np.ndarray, values: list) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if len(keys) and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be sorted and strictly increasing")
        if len(values) != len(keys):
            raise ValueError("values must match keys in length")
        self._keys = keys.copy()
        self._values = list(values)

    def apply_insert(self, key: float, value: object) -> bool:
        key = float(key)
        pos = int(np.searchsorted(self._keys, key, side="left"))
        if pos < len(self._keys) and self._keys[pos] == key:
            return False
        self._keys = np.insert(self._keys, pos, key)
        self._values.insert(pos, value)
        return True

    def apply_delete(self, key: float) -> bool:
        pos = self._locate(float(key))
        if pos < 0:
            return False
        self._keys = np.delete(self._keys, pos)
        del self._values[pos]
        return True

    def apply_update(self, key: float, value: object) -> bool:
        pos = self._locate(float(key))
        if pos < 0:
            return False
        self._values[pos] = value
        return True


class ResilientDILI:
    """A DILI that detects, routes around, and repairs its own damage.

    Typical use::

        index = ResilientDILI()
        index.bulk_load(keys, values)
        ...                      # faults happen (or are injected)
        index.detect()           # -> number of opened repair tickets
        index.get(key)           # correct even while DEGRADED
        index.repair_all()       # back to HEALTHY, no full rebuild
        index.verify()           # deep check: tree, plan, authority

    See the module docstring for the serving contract.  The wrapper is
    single-threaded like :class:`DILI` itself; wrap it the way
    :class:`repro.ConcurrentDILI` wraps a plain index if you need
    concurrent chaos (the harness drives that combination directly).
    """

    def __init__(self, config: DiliConfig | None = None) -> None:
        self.index = DILI(config)
        self.auth = PairTable()
        self.monitor = HealthMonitor()
        self.engine = RepairEngine(self.index, self.auth, self.monitor)

    # ------------------------------------------------------------------
    # Health and lifecycle
    # ------------------------------------------------------------------

    @property
    def health(self) -> Health:
        return self.monitor.state

    def detect(self) -> int:
        """Scan for damage; opens tickets and degrades when found."""
        return self.engine.scan()

    def repair_step(self) -> bool:
        """One bounded unit of repair work; True while work remains."""
        return self.engine.repair_step()

    def repair_all(self, max_steps: int = 1000) -> int:
        """Repair to quiescence; returns the number of steps taken."""
        return self.engine.repair_all(max_steps)

    def verify(self) -> None:
        """Deep-verify tree, plan, router, and tree/authority agreement.

        Raises :class:`~repro.check.errors.SanitizerViolation` or
        :class:`~repro.check.errors.InvariantError` on any divergence.
        """
        verify_tree(self.index)
        expected = self.auth.items()
        actual = list(self.index.items())
        if len(actual) != len(expected):
            raise InvariantError(
                f"index holds {len(actual)} pairs, authority "
                f"{len(expected)}"
            )
        for (ak, av), (ek, ev) in zip(actual, expected):
            if ak != ek or (av is not ev and av != ev):
                raise InvariantError(
                    f"index pair ({ak!r}, {av!r}) diverged from "
                    f"authority ({ek!r}, {ev!r})"
                )

    def stats(self) -> dict:
        """Engine counters + plan-maintenance counters + health."""
        index = self.index
        return {
            "health": self.monitor.state.value,
            "open_tickets": len(self.engine.tickets),
            "plan_patches": index.plan_patches,
            "plan_subtree_recompiles": index.plan_subtree_recompiles,
            "plan_recompiles": index.plan_recompiles,
            **{
                k: (dict(v) if isinstance(v, dict) else v)
                for k, v in self.engine.counters.items()
            },
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(
        self, keys: np.ndarray, values: list | np.ndarray | None = None
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if values is None:
            values = list(range(len(keys)))
        else:
            values = list(values)
        self.index.bulk_load(keys, values)
        self.auth.bulk_set(keys, values)

    def __len__(self) -> int:
        return len(self.auth)

    # ------------------------------------------------------------------
    # Reads (fallback chain)
    # ------------------------------------------------------------------

    def get(self, key: float) -> object | None:
        key = float(key)
        if self.monitor.healthy:
            return self.index.get(key)
        if self.engine.is_quarantined(key):
            return self.auth.get(key)
        return self.index.get(key)

    def get_batch(self, keys: np.ndarray | list) -> list:
        keys = np.asarray(keys, dtype=np.float64)
        if self.monitor.healthy:
            return self.index.get_batch(keys)
        # Degraded: the flat plan is off limits; split per key between
        # the scalar tree and the authoritative table.
        engine = self.engine
        auth = self.auth
        index = self.index
        return [
            auth.get(k) if engine.is_quarantined(k) else index.get(k)
            for k in keys.tolist()
        ]

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Writes (quarantined keys redirect to authority)
    # ------------------------------------------------------------------

    def _redirect(self, key: float) -> bool:
        return not self.monitor.healthy and self.engine.is_quarantined(key)

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        if self._redirect(key):
            ok = self.auth.apply_insert(key, value)
            if ok:
                self.engine.note_buffered(key, "insert")
            return ok
        ok = self.index.insert(key, value)
        if ok:
            self.auth.apply_insert(key, value)
        return ok

    def delete(self, key: float) -> bool:
        key = float(key)
        if self._redirect(key):
            ok = self.auth.apply_delete(key)
            if ok:
                self.engine.note_buffered(key, "delete")
            return ok
        ok = self.index.delete(key)
        if ok:
            self.auth.apply_delete(key)
        return ok

    def update(self, key: float, value: object) -> bool:
        key = float(key)
        if self._redirect(key):
            ok = self.auth.apply_update(key, value)
            if ok:
                self.engine.note_buffered(key, "update")
            return ok
        ok = self.index.update(key, value)
        if ok:
            self.auth.apply_update(key, value)
        return ok

    def insert_batch(
        self, keys: np.ndarray | list, values: list | None = None
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if values is None:
            values = ["inserted"] * len(keys)
        if self.monitor.healthy:
            out = self.index.insert_batch(keys, values)
            for i in np.flatnonzero(out):
                self.auth.apply_insert(float(keys[i]), values[int(i)])
            return out
        out = np.zeros(len(keys), dtype=bool)
        for i, k in enumerate(keys.tolist()):
            out[i] = self.insert(k, values[i])
        return out

    def delete_batch(self, keys: np.ndarray | list) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if self.monitor.healthy:
            out = self.index.delete_batch(keys)
            for i in np.flatnonzero(out):
                self.auth.apply_delete(float(keys[i]))
            return out
        out = np.zeros(len(keys), dtype=bool)
        for i, k in enumerate(keys.tolist()):
            out[i] = self.delete(k)
        return out

    def update_batch(
        self, keys: np.ndarray | list, values: list
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if self.monitor.healthy:
            out = self.index.update_batch(keys, values)
            for i in np.flatnonzero(out):
                self.auth.apply_update(float(keys[i]), values[int(i)])
            return out
        out = np.zeros(len(keys), dtype=bool)
        for i, k in enumerate(keys.tolist()):
            out[i] = self.update(k, values[i])
        return out
