"""Serving health state machine (HEALTHY -> DEGRADED -> REPAIRING).

The resilience layer's contract is that the *read path knows how much
to trust each structure*: the compiled flat plan is only used while the
index is HEALTHY; DEGRADED/REPAIRING reads fall back to the scalar tree
and, inside quarantined subtrees, to a binary search of the
authoritative pair table (see :mod:`repro.resilience.serving`).  The
state machine makes the trust level explicit and its transitions
auditable:

* ``HEALTHY -> DEGRADED``   -- a scan found at least one violation.
* ``DEGRADED -> REPAIRING`` -- the repair engine started working.
* ``REPAIRING -> DEGRADED`` -- a repaired subtree failed re-verification
  (the ticket reopens and will be rebuilt again).
* ``REPAIRING -> HEALTHY``  -- every ticket closed and re-verified.

Any other transition is a bug in the caller and raises
:class:`~repro.check.errors.InvariantError`; same-state transitions are
no-ops so scans may re-report damage idempotently.
"""

from __future__ import annotations

import enum

from repro.check.errors import InvariantError


class Health(enum.Enum):
    """Trust level of the serving structures."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    REPAIRING = "repairing"


_ALLOWED: frozenset[tuple[Health, Health]] = frozenset(
    {
        (Health.HEALTHY, Health.DEGRADED),
        (Health.DEGRADED, Health.REPAIRING),
        (Health.REPAIRING, Health.DEGRADED),
        (Health.REPAIRING, Health.HEALTHY),
    }
)


#: For each (current, target) pair, the next legal hop on the shortest
#: path; the state machine is small enough to enumerate by hand.
_NEXT_HOP: dict[tuple[Health, Health], Health] = {
    (Health.HEALTHY, Health.DEGRADED): Health.DEGRADED,
    (Health.HEALTHY, Health.REPAIRING): Health.DEGRADED,
    (Health.DEGRADED, Health.HEALTHY): Health.REPAIRING,
    (Health.DEGRADED, Health.REPAIRING): Health.REPAIRING,
    (Health.REPAIRING, Health.HEALTHY): Health.HEALTHY,
    (Health.REPAIRING, Health.DEGRADED): Health.DEGRADED,
}


class HealthMonitor:
    """Tracks the health state and its full transition history."""

    def __init__(self) -> None:
        self._state = Health.HEALTHY
        #: Every committed transition, oldest first.
        self.history: list[tuple[Health, Health]] = []

    @property
    def state(self) -> Health:
        return self._state

    @property
    def healthy(self) -> bool:
        return self._state is Health.HEALTHY

    def to(self, new: Health) -> None:
        """Transition to ``new``; same-state is a no-op.

        Raises:
            InvariantError: The transition is not in the state machine
                (e.g. HEALTHY -> REPAIRING without a DEGRADED scan, or
                DEGRADED -> HEALTHY without a repair pass).
        """
        old = self._state
        if new is old:
            return
        if (old, new) not in _ALLOWED:
            raise InvariantError(
                f"illegal health transition {old.name} -> {new.name}"
            )
        self._state = new
        self.history.append((old, new))

    def drive_to(self, target: Health) -> None:
        """Walk legal transitions until ``target`` is reached.

        Supervisors derive a *target* health from per-shard state (see
        :class:`~repro.sharding.supervision.FleetSupervisor`) without
        caring which state the monitor is currently in; this walks the
        connecting edges -- e.g. DEGRADED -> HEALTHY routes through
        REPAIRING -- so every hop stays auditable in ``history`` and
        illegal jumps remain impossible by construction.
        """
        while self._state is not target:
            self.to(_NEXT_HOP[(self._state, target)])
