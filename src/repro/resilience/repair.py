"""Online repair engine: quarantine, rebuild, re-verify -- no downtime.

The engine maps any sanitizer finding to the smallest subtree that
contains it, opens a :class:`RepairTicket` quarantining that subtree
(the serving layer routes reads around it and redirects its writes to
the authoritative pair table), then repairs it incrementally:

1. **quarantine** -- :meth:`RepairEngine.scan` runs the scoped
   ``repro.check`` verifiers (internal models first, then each
   top-level leaf's structure and content, then the flat plan) and
   opens one ticket per damaged subtree.  Health goes DEGRADED.
2. **rebuild** -- :meth:`RepairEngine.repair_step` restores the
   ticket's subtree from authoritative state: internal models are
   recomputed exactly (Eq. 1 is a pure function of ``[lb, ub)`` and
   fanout), leaves are rebuilt **bulk-load-identically** via
   :meth:`repro.core.dili.DILI.rebuild_leaf` from the authoritative
   pairs routed to them, and the compiled flat plan is spliced with
   ``recompile_subtree`` -- never a full-index rebuild.
3. **verify** -- the same step re-runs the scoped verifiers over just
   the repaired subtree (structure, content vs. authority, plan
   answers).  Pass closes the ticket; the last closed ticket restores
   HEALTHY.  Fail reopens the rebuild stage (bounded attempts).

Because leaves are rebuilt with the exact bulk-load construction path,
a repaired subtree is *bit-identical* (models, slot layout,
bookkeeping) to what a fresh ``bulk_load`` of the surviving pairs would
build for the same range -- the property the identity oracle
(:mod:`repro.resilience.oracle`) checks and CI enforces.

Quarantine membership is decided by **routing, not key ranges**: a key
is quarantined iff the root-to-leaf descent reaches the ticket's node.
The walk compares node identity *before* using a node's model, so it is
exact even when the target's own model is the thing that is poisoned,
and it inherits the tree's boundary behaviour (clamping) for free.
"""

from __future__ import annotations

from repro.check import SanitizerViolation, verify_internal, verify_subtree
from repro.check.errors import InvariantError
from repro.core.linear_model import LinearModel
from repro.core.nodes import DenseLeafNode, InternalNode
from repro.resilience.faults import _internal_nodes, _top_nodes
from repro.resilience.health import Health, HealthMonitor

__all__ = ["Finding", "RepairTicket", "RepairEngine"]

#: Rebuild attempts per ticket before the engine gives up loudly.
_MAX_ATTEMPTS = 5


class Finding:
    """One detected violation, localized to its containing subtree.

    Attributes:
        kind: ``"internal"`` | ``"leaf"`` | ``"dense"`` | ``"plan"``.
        node: The damaged subtree's root: an :class:`InternalNode` for
            model poisoning, otherwise the containing *top-level* leaf
            (for ``"plan"`` findings the tree node is intact; the
            plan's extent for it is what diverged).
        message: The verifier's diagnostic.
    """

    __slots__ = ("kind", "node", "message")

    def __init__(self, kind: str, node, message: str) -> None:
        self.kind = kind
        self.node = node
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.kind!r}, {self.message!r})"


class RepairTicket:
    """Quarantine + repair state for one finding."""

    __slots__ = ("finding", "stage", "attempts", "buffered")

    def __init__(self, finding: Finding) -> None:
        self.finding = finding
        #: ``"quarantined"`` (awaiting rebuild) or ``"verify"``
        #: (rebuilt, awaiting re-verification).
        self.stage = "quarantined"
        self.attempts = 0
        #: Write operations redirected to authority while quarantined,
        #: as ``(op, key)`` tuples -- observability, not replay state:
        #: the authoritative table already absorbed them.
        self.buffered: list[tuple[str, float]] = []

    def covers(self, index, key: float) -> bool:
        """Would a correct root-to-leaf descent for ``key`` pass through
        this ticket's subtree?

        Node identity is compared *before* a node's model is evaluated,
        so the answer is exact even when the target itself is poisoned;
        ancestors of the target are trusted (the scan opens internal
        tickets first and :meth:`RepairEngine.repair_step` closes them
        first, so by the time a deeper ticket's membership matters its
        ancestors are clean).
        """
        target = self.finding.node
        node = index.root
        while type(node) is InternalNode:
            if node is target:
                return True
            node = node.children[node.child_index(key)]
        return node is target


class RepairEngine:
    """Scans for damage, quarantines it, and repairs it online.

    Args:
        index: The :class:`repro.core.dili.DILI` being protected.
        auth: The authoritative :class:`repro.resilience.serving.PairTable`
            (ground truth for rebuilds and content checks).
        monitor: The shared :class:`HealthMonitor`.
    """

    def __init__(self, index, auth, monitor: HealthMonitor) -> None:
        self.index = index
        self.auth = auth
        self.monitor = monitor
        self.tickets: list[RepairTicket] = []
        self.counters = {
            "scans": 0,
            "findings": {"internal": 0, "leaf": 0, "dense": 0, "plan": 0},
            "repairs": {"internal": 0, "leaf": 0, "dense": 0, "plan": 0},
            "plan_splices": 0,
            "plan_drops": 0,
            "reverify_failures": 0,
            "full_rebuilds": 0,  # stays zero: repairs are always scoped
        }
        # The suite-wide TreeSanitizer is suspended while any ticket is
        # open (the tree is *known* damaged; the engine's scoped checks
        # take over) and restored on return to HEALTHY.
        self._suspended_sanitizer = None

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def scan(self) -> int:
        """Run the detection pass; returns the number of new tickets.

        Order matters: internal models are checked first because leaf
        content attribution routes authoritative keys through them; if
        any internal node is poisoned, leaf/plan findings are deferred
        to the rescan that follows its repair.
        """
        self.counters["scans"] += 1
        index = self.index
        if index.root is None:
            return 0
        ticketed = {id(t.finding.node) for t in self.tickets}
        new: list[Finding] = []

        for node in _internal_nodes(index.root):
            try:
                verify_internal(node)
            except SanitizerViolation as exc:
                if id(node) not in ticketed:
                    new.append(Finding("internal", node, str(exc)))
        if not new and not any(
            t.finding.kind == "internal" for t in self.tickets
        ):
            new.extend(self._scan_leaves(ticketed))
            if not new and not self.tickets:
                finding = self._scan_plan()
                if finding is not None and id(finding.node) not in ticketed:
                    new.append(finding)

        for finding in new:
            self.counters["findings"][finding.kind] += 1
            self.tickets.append(RepairTicket(finding))
        if self.tickets:
            if self._suspended_sanitizer is None:
                self._suspended_sanitizer = index.sanitizer
                index.sanitizer = None
            self.monitor.to(Health.DEGRADED)
        return len(new)

    def _scan_leaves(self, ticketed: set[int]) -> list[Finding]:
        """Structure + content findings for every top-level leaf."""
        findings: list[Finding] = []
        groups = self._route_authority()
        for leaf, expected in groups:
            if id(leaf) in ticketed:
                continue
            kind = "dense" if type(leaf) is DenseLeafNode else "leaf"
            try:
                verify_subtree(leaf)
            except SanitizerViolation as exc:
                findings.append(Finding(kind, leaf, str(exc)))
                continue
            message = self._content_mismatch(leaf, expected)
            if message is not None:
                findings.append(Finding(kind, leaf, message))
        return findings

    def _scan_plan(self) -> Finding | None:
        """Cross-check a live flat plan against the authoritative table.

        Only reached when the object tree itself verified clean, so any
        divergence is plan-side; the finding is attributed to the
        top-level leaf whose extent holds the first divergent position.
        """
        index = self.index
        plan = index._flat
        if plan is None:
            return None
        auth = self.auth
        keys = auth.keys
        try:
            plan.self_check()
            if len(plan.sorted_keys) != len(keys):
                raise SanitizerViolation(
                    f"plan holds {len(plan.sorted_keys)} keys, authority "
                    f"holds {len(keys)}"
                )
            import numpy as np

            diff = np.flatnonzero(plan.sorted_keys != keys)
            if len(diff):
                raise SanitizerViolation(
                    f"plan key table diverged at position {int(diff[0])}"
                )
            got = plan.get_batch(keys)
            values = auth.values
            for i, actual in enumerate(got):
                if actual is not values[i] and actual != values[i]:
                    raise SanitizerViolation(
                        f"plan answers {actual!r} for key {keys[i]!r}, "
                        f"authority holds {values[i]!r}"
                    )
        except SanitizerViolation as exc:
            leaf = self._leaf_of_first_divergence(exc)
            return Finding("plan", leaf, str(exc))
        return None

    def _leaf_of_first_divergence(self, exc) -> object:
        """Containing top-level leaf for a plan divergence.

        Routes every authoritative key through the (verified-clean)
        object tree and, where plan and authority key tables disagree,
        descends for the first divergent key; falls back to the first
        top-level leaf for table-shape mismatches.
        """
        import numpy as np

        index = self.index
        plan = index._flat
        keys = self.auth.keys
        n = min(len(plan.sorted_keys), len(keys))
        if n:
            diff = np.flatnonzero(plan.sorted_keys[:n] != keys[:n])
            pos = int(diff[0]) if len(diff) else None
            if pos is None:
                # Same key table: the divergence was a value/extent
                # answer; find it by re-asking per key.
                got = plan.get_batch(keys)
                values = self.auth.values
                pos = 0
                for i, actual in enumerate(got):
                    if actual is not values[i] and actual != values[i]:
                        pos = i
                        break
            probe = float(keys[pos]) if pos < len(keys) else float(
                plan.sorted_keys[pos]
            )
            node = index.root
            while type(node) is InternalNode:
                node = node.children[node.child_index(probe)]
            return node
        return _top_nodes(index.root)[0]

    def _route_authority(self) -> list[tuple[object, list]]:
        """Authoritative pairs grouped by the top-level leaf that owns
        them, in DFS leaf order (leaves with no keys get empty groups).

        Uses the index's cached :class:`InternalRouter` -- internal
        nodes must be clean (the scan ordering guarantees it).
        """
        import numpy as np

        index = self.index
        auth = self.auth
        tops = _top_nodes(index.root)
        groups: dict[int, list] = {id(leaf): [] for leaf in tops}
        keys = auth.keys
        if len(keys):
            router = index._get_router()
            leaf_of, _ = router.route(keys)
            values = auth.values
            leaves = router.leaves
            for i, li in enumerate(leaf_of.tolist()):
                groups[id(leaves[li])].append((float(keys[i]), values[i]))
        return [(leaf, groups[id(leaf)]) for leaf in tops]

    @staticmethod
    def _content_mismatch(leaf, expected: list) -> str | None:
        """First content divergence between a leaf walk and authority."""
        actual = list(leaf.iter_pairs())
        if len(actual) != len(expected):
            return (
                f"leaf [{leaf.lb}, {leaf.ub}) holds {len(actual)} pairs, "
                f"authority routes {len(expected)} to it"
            )
        for (ak, av), (ek, ev) in zip(actual, expected):
            if ak != ek:
                return f"leaf key {ak!r} diverged from authority {ek!r}"
            if av is not ev and av != ev:
                return (
                    f"leaf value {av!r} under key {ak!r} diverged from "
                    f"authority {ev!r}"
                )
        return None

    # ------------------------------------------------------------------
    # Quarantine membership (used by the serving layer)
    # ------------------------------------------------------------------

    def is_quarantined(self, key: float) -> bool:
        key = float(key)
        return any(t.covers(self.index, key) for t in self.tickets)

    def note_buffered(self, key: float, op: str) -> None:
        """Record a redirected write on the ticket that quarantines it."""
        key = float(key)
        for ticket in self.tickets:
            if ticket.covers(self.index, key):
                ticket.buffered.append((op, key))
                return

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def repair_step(self) -> bool:
        """Rebuild and re-verify the oldest open ticket's subtree.

        Returns True while there is repair work left.  One call does
        one bounded unit of work (one subtree), which is what keeps
        repair latency bounded and lets the serving layer interleave
        traffic between steps.  Rebuild and re-verification happen in
        the *same* step: a write redirected to authority between them
        would otherwise move the ground truth under the verifier and
        fail an actually-correct rebuild.
        """
        if not self.tickets:
            return False
        self.monitor.to(Health.REPAIRING)
        ticket = self.tickets[0]
        self._rebuild(ticket)
        ticket.stage = "verify"
        try:
            self._reverify(ticket)
        except SanitizerViolation:
            self.counters["reverify_failures"] += 1
            ticket.attempts += 1
            if ticket.attempts >= _MAX_ATTEMPTS:
                raise InvariantError(
                    f"repair of {ticket.finding.kind} subtree failed "
                    f"{ticket.attempts} times: {ticket.finding.message}"
                ) from None
            ticket.stage = "quarantined"
            self.monitor.to(Health.DEGRADED)
            return True
        self.counters["repairs"][ticket.finding.kind] += 1
        self.tickets.pop(0)
        if not self.tickets:
            # Bookkeeping that scoped rebuilds cannot restore leaf by
            # leaf: the tree-wide pair count.
            self.index._count = len(self.auth)
            self.monitor.to(Health.HEALTHY)
            if self._suspended_sanitizer is not None:
                self.index.sanitizer = self._suspended_sanitizer
                self._suspended_sanitizer = None
        else:
            self.monitor.to(Health.DEGRADED)
        return True

    def repair_all(self, max_steps: int = 1000) -> int:
        """Drive :meth:`repair_step` to quiescence; returns steps taken."""
        steps = 0
        while self.repair_step():
            steps += 1
            if steps >= max_steps:
                raise InvariantError(
                    f"repair did not converge within {max_steps} steps"
                )
        return steps

    def _rebuild(self, ticket: RepairTicket) -> None:
        finding = ticket.finding
        if finding.kind == "internal":
            node = finding.node
            model = LinearModel.from_range(
                node.lb, node.ub, len(node.children)
            )
            node.slope = model.slope
            node.intercept = model.intercept
            # Writes routed around this subtree only reached authority;
            # reconcile every leaf under it so the tree catches up.
            self._reconcile_leaves(_top_nodes(node))
        else:
            self._reconcile_leaves([finding.node], force=True)

    def _reconcile_leaves(self, leaves: list, *, force: bool = False) -> None:
        """Rebuild (bulk-load-identically) each leaf whose content
        diverged from authority -- or unconditionally with ``force`` --
        and splice the flat plan's extent for it."""
        groups = {
            id(leaf): expected for leaf, expected in self._route_authority()
        }
        for leaf in leaves:
            expected = groups[id(leaf)]
            if not force and self._content_mismatch(leaf, expected) is None:
                continue
            if type(leaf) is DenseLeafNode:
                self.index.rebuild_dense_leaf(
                    leaf,
                    [k for k, _ in expected],
                    [v for _, v in expected],
                )
                # ``recompile_subtree`` declines dense extents; the
                # plan, if live, is recompiled lazily on next use.
                if self.index._flat is not None:
                    self.index._invalidate_plan()
                    self.counters["plan_drops"] += 1
                continue
            self.index.rebuild_leaf(leaf, expected)
            plan = self.index._flat
            if plan is not None:
                anchor = (
                    expected[0][0]
                    if expected
                    else leaf.lb + (leaf.ub - leaf.lb) / 2.0
                )
                # Copy-on-write splice (CHK008): if the plan has been
                # epoch-published it is frozen, and the repair must
                # install a successor version instead of patching the
                # buffers lock-free readers are descending.
                new = plan.applied_recompile_subtrees([(anchor, leaf)])
                if new is not None:
                    self.index._flat = new
                    self.counters["plan_splices"] += 1
                else:
                    self.index._invalidate_plan()
                    self.counters["plan_drops"] += 1

    def _reverify(self, ticket: RepairTicket) -> None:
        """Scoped post-repair verification; raises on residual damage."""
        finding = ticket.finding
        if finding.kind == "internal":
            verify_internal(finding.node)
            leaves = _top_nodes(finding.node)
        else:
            leaves = [finding.node]
        groups = {
            id(leaf): expected for leaf, expected in self._route_authority()
        }
        for leaf in leaves:
            verify_subtree(leaf)
            message = self._content_mismatch(leaf, groups[id(leaf)])
            if message is not None:
                raise SanitizerViolation(message)
        plan = self.index._flat
        if plan is not None:
            import numpy as np

            for leaf in leaves:
                expected = groups[id(leaf)]
                if not expected:
                    continue
                keys = np.fromiter(
                    (k for k, _ in expected),
                    dtype=np.float64,
                    count=len(expected),
                )
                got = plan.get_batch(keys)
                for (k, v), actual in zip(expected, got):
                    if actual is not v and actual != v:
                        raise SanitizerViolation(
                            f"plan still answers {actual!r} for key {k!r} "
                            f"after repair; authority holds {v!r}"
                        )
