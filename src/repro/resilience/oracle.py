"""Repair-identity oracle: a repaired tree must equal a fresh bulk load.

The repair engine's central claim is that rebuilding a quarantined
subtree from the authoritative pairs is *indistinguishable* from never
having been corrupted: same models, same slot layout, same bookkeeping,
and therefore the same simulated lookup cost.  This module turns that
claim into a checkable oracle:

* :func:`tree_signature` -- a nested-tuple fingerprint of a node tree
  covering every field that affects behaviour (bounds, model
  coefficients, slot contents, bookkeeping counters, dense arrays).
  Tracer region ids are deliberately excluded: they are allocation
  order, not behaviour.
* :func:`trees_identical` / :func:`diff_trees` -- structural equality
  and a human-readable first divergence for test failure messages.
* :func:`simulated_cost` -- the behavioural check: replay a key batch
  through the cost model and return (cycles, cache misses), which must
  match between a repaired index and a freshly bulk-loaded one.

Used by the Hypothesis property test (any injected corruption, once
repaired, restores bit-identity) and by the chaos harness's final
convergence assertions.
"""

from __future__ import annotations

from repro.core.nodes import DenseLeafNode, InternalNode
from repro.simulate.tracer import CostTracer

__all__ = [
    "tree_signature",
    "trees_identical",
    "diff_trees",
    "simulated_cost",
]


def tree_signature(node) -> tuple | None:
    """Nested-tuple fingerprint of a subtree (behavioural fields only)."""
    if node is None:
        return None
    if type(node) is InternalNode:
        return (
            "I",
            node.lb,
            node.ub,
            node.slope,
            node.intercept,
            tuple(tree_signature(c) for c in node.children),
        )
    if type(node) is DenseLeafNode:
        return (
            "D",
            node.lb,
            node.ub,
            node.slope,
            node.intercept,
            tuple(float(k) for k in node.keys),
            tuple(node.values),
        )
    slots = tuple(
        ("P", entry[0], entry[1])
        if type(entry) is tuple
        else (None if entry is None else tree_signature(entry))
        for entry in node.slots
    )
    return (
        "L",
        node.lb,
        node.ub,
        node.slope,
        node.intercept,
        node.num_pairs,
        node.delta,
        node.kappa,
        node.alpha,
        slots,
    )


def trees_identical(a, b) -> bool:
    """True when two indexes' node trees are structurally bit-identical."""
    return tree_signature(a.root) == tree_signature(b.root)


def diff_trees(a, b) -> str | None:
    """Path to the first divergence between two trees, or ``None``.

    Walks both signatures in lockstep and reports a ``/``-separated
    path of child positions plus the two differing components -- small
    enough to drop into an assertion message.
    """
    return _diff(tree_signature(a.root), tree_signature(b.root), "root")


def _diff(sa, sb, path: str) -> str | None:
    if sa == sb:
        return None
    if (
        isinstance(sa, tuple)
        and isinstance(sb, tuple)
        and len(sa) == len(sb)
        and sa[:1] == sb[:1]
    ):
        for i, (ca, cb) in enumerate(zip(sa, sb)):
            sub = _diff(ca, cb, f"{path}/{i}")
            if sub is not None:
                return sub
    return f"{path}: {sa!r} != {sb!r}"


def simulated_cost(index, keys) -> tuple[float, int]:
    """(simulated cycles, cache misses) for scalar gets of ``keys``.

    A fresh :class:`CostTracer` (and therefore a cold simulated cache)
    each call, so two structurally identical indexes produce exactly
    equal numbers.
    """
    tracer = CostTracer()
    for key in keys:
        index.get(float(key), tracer)
    return tracer.total_cycles, tracer.cache_misses
