"""Process-wide fault registry: corrupt any layer of the stack, on purpose.

PR 1's :class:`repro.durability.faultpoints.FaultInjector` can only
crash the WAL/snapshot write path.  This module promotes fault
injection to a process-wide concern (importable as :mod:`repro.faults`)
able to damage every serving structure the sanitizers watch:

=================  ====================================================
kind               what it corrupts (and which check detects it)
=================  ====================================================
``flat_cell``      one ``FlatPlan.pair_keys`` SoA cell (plan sorted-key
                   table diverges from the tree / authoritative keys)
``leaf_model``     a top-level leaf's linear model (stored pairs no
                   longer sit at their model-predicted slots)
``internal_model`` an internal node's Eq. 1 model (exact equal-width
                   model equality fails)
``slot_clobber``   a pair slot zeroed without bookkeeping (per-leaf
                   walked-vs-tracked pair count diverges)
``dense_flip``     two adjacent dense-leaf (DILI-LO) entries swapped
                   jointly (keys array no longer strictly sorted)
``lock_stall``     a stripe lock delayed on acquire
                   (:class:`StallingLock`; surfaces in ``lock_stats``)
=================  ====================================================

plus scheduled WAL/snapshot I/O failure via memoized durability
injectors (:meth:`FaultRegistry.durability` is the *only* sanctioned
construction site of ``FaultInjector`` outside the durability module
itself -- lint rule CHK006 enforces that).

Every injector is **detectability-verified**: it either returns a
:class:`FaultReport` for damage the ``repro.check`` sanitizers provably
flag, or it undoes its edit and returns ``None`` so the caller can
redraw.  Injections are driven by a seeded
:class:`FaultSchedule`, which is what makes chaos runs reproducible.

The ``flat_cell`` corruption deliberately stays *order-preserving*: the
poisoned cell is moved strictly between its own key and the next key of
the same top-level leaf, so the plan's global key order (which the
patch paths binary-search against) survives and concurrent writes to
*other* leaves keep patching correct positions while the damaged leaf
is quarantined.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.check import SanitizerViolation, verify_subtree
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode
from repro.durability.faultpoints import (
    CRASH_POINTS,
    TORN_POINTS,
    FaultInjector,
    SimulatedCrash,
)

__all__ = [
    "CRASH_POINTS",
    "TORN_POINTS",
    "FaultInjector",
    "SimulatedCrash",
    "FAULT_FLAT_CELL",
    "FAULT_LEAF_MODEL",
    "FAULT_INTERNAL_MODEL",
    "FAULT_SLOT_CLOBBER",
    "FAULT_DENSE_FLIP",
    "FAULT_LOCK_STALL",
    "TREE_FAULT_KINDS",
    "FaultReport",
    "FaultRegistry",
    "FaultSchedule",
    "StallingLock",
    "DEFAULT_REGISTRY",
]

FAULT_FLAT_CELL = "flat_cell"
FAULT_LEAF_MODEL = "leaf_model"
FAULT_INTERNAL_MODEL = "internal_model"
FAULT_SLOT_CLOBBER = "slot_clobber"
FAULT_DENSE_FLIP = "dense_flip"
FAULT_LOCK_STALL = "lock_stall"

#: Structure-corrupting kinds applicable to a standard (locally
#: optimized) DILI; ``dense_flip`` additionally needs the DILI-LO
#: ablation and ``lock_stall`` a :class:`~repro.ConcurrentDILI`.
TREE_FAULT_KINDS: tuple[str, ...] = (
    FAULT_FLAT_CELL,
    FAULT_LEAF_MODEL,
    FAULT_INTERNAL_MODEL,
    FAULT_SLOT_CLOBBER,
)


@dataclass(frozen=True)
class FaultReport:
    """One successfully injected (and provably detectable) fault.

    Attributes:
        kind: One of the fault-kind constants above.
        message: Human-readable description of the damage.
        node: The damaged node object (top-level leaf, dense leaf or
            internal node), or ``None`` for plan-only damage where it
            is the *containing* top-level leaf.
        key: A representative key inside the damaged region (used by
            tests to probe the degraded read path), or ``None``.
    """

    kind: str
    message: str
    node: object
    key: float | None = None


def _top_nodes(root) -> list:
    """Top-level leaves (LeafNode or DenseLeafNode) in DFS order."""
    out: list = []

    def walk(node) -> None:
        if type(node) is InternalNode:
            for child in node.children:
                walk(child)
        else:
            out.append(node)

    if root is not None:
        walk(root)
    return out


def _internal_nodes(root) -> list[InternalNode]:
    out: list[InternalNode] = []

    def walk(node) -> None:
        if type(node) is InternalNode:
            out.append(node)
            for child in node.children:
                walk(child)

    if root is not None:
        walk(root)
    return out


def _subtree_is_clean(node) -> bool:
    try:
        verify_subtree(node)
    except SanitizerViolation:
        return False
    return True


def _inject_leaf_model(index, rng) -> FaultReport | None:
    """Poison a top-level leaf's linear model (detectably)."""
    leaves = [
        n for n in _top_nodes(index.root)
        if type(n) is LeafNode and n.num_pairs > 0
    ]
    if not leaves:
        return None
    leaf = leaves[int(rng.integers(len(leaves)))]
    for delta in (1.0, -1.0):
        leaf.intercept += delta
        if not _subtree_is_clean(leaf):
            key = next(leaf.iter_pairs())[0]
            return FaultReport(
                FAULT_LEAF_MODEL,
                f"leaf [{leaf.lb}, {leaf.ub}) intercept shifted by {delta}",
                leaf,
                key,
            )
        leaf.intercept -= delta  # undetectable: undo and try the other way
    return None


def _inject_internal_model(index, rng) -> FaultReport | None:
    """Poison an internal node's Eq. 1 model (always detectable)."""
    nodes = _internal_nodes(index.root)
    if not nodes:
        return None
    node = nodes[int(rng.integers(len(nodes)))]
    node.slope = node.slope * 1.5
    return FaultReport(
        FAULT_INTERNAL_MODEL,
        f"internal [{node.lb}, {node.ub}) slope scaled by 1.5",
        node,
    )


def _inject_slot_clobber(index, rng) -> FaultReport | None:
    """Zero a stored pair slot without fixing the leaf bookkeeping."""
    leaves = [
        n for n in _top_nodes(index.root)
        if type(n) is LeafNode and n.num_pairs > 0
    ]
    if not leaves:
        return None
    leaf = leaves[int(rng.integers(len(leaves)))]
    pair_slots = [
        i for i, e in enumerate(leaf.slots) if type(e) is tuple
    ]
    if not pair_slots:
        return None  # every pair sits under a nested leaf
    slot = pair_slots[int(rng.integers(len(pair_slots)))]
    key = leaf.slots[slot][0]
    leaf.slots[slot] = None
    return FaultReport(
        FAULT_SLOT_CLOBBER,
        f"leaf [{leaf.lb}, {leaf.ub}) slot {slot} (key {key}) zeroed",
        leaf,
        key,
    )


def _inject_dense_flip(index, rng) -> FaultReport | None:
    """Swap two adjacent dense-leaf entries, keys and values jointly."""
    leaves = [
        n for n in _top_nodes(index.root)
        if type(n) is DenseLeafNode and len(n.keys) >= 2
    ]
    if not leaves:
        return None
    leaf = leaves[int(rng.integers(len(leaves)))]
    i = int(rng.integers(len(leaf.keys) - 1))
    keys = leaf.keys
    keys[i], keys[i + 1] = float(keys[i + 1]), float(keys[i])
    vals = leaf.values
    vals[i], vals[i + 1] = vals[i + 1], vals[i]
    return FaultReport(
        FAULT_DENSE_FLIP,
        f"dense leaf [{leaf.lb}, {leaf.ub}) entries {i}/{i + 1} swapped",
        leaf,
        float(keys[i + 1]),  # the key that is now out of place
    )


def _inject_flat_cell(index, rng) -> FaultReport | None:
    """Corrupt one plan ``pair_keys`` cell, order-preservingly.

    Requires a live (or compilable) plan over a pair-only tree.  The
    victim cell is moved to the midpoint of its gap to the *next key of
    the same top-level leaf*, so global key order survives and only the
    containing leaf's extent answers wrongly.
    """
    if index.root is None:
        return None
    plan = index._flat
    if plan is None:
        plan = index._plan()
    if len(plan.dense_keys):
        return None
    leaves = [
        n for n in _top_nodes(index.root)
        if type(n) is LeafNode and n.num_pairs >= 2
    ]
    if not leaves:
        return None
    leaf = leaves[int(rng.integers(len(leaves)))]
    leaf_keys = [k for k, _ in leaf.iter_pairs()]
    j = int(rng.integers(len(leaf_keys) - 1))
    kj, knext = leaf_keys[j], leaf_keys[j + 1]
    mid = kj + (knext - kj) / 2.0
    if not (kj < mid < knext):
        return None  # gap too small to corrupt order-preservingly
    p = int(np.searchsorted(plan.pair_keys, kj))
    if (
        p + 1 >= len(plan.pair_keys)
        or plan.pair_keys[p] != kj
        or plan.pair_keys[p + 1] != knext
    ):
        return None  # plan out of sync with the tree; do not compound it
    # sorted_keys aliases pair_keys on pair-only plans, so one store
    # corrupts both views consistently -- exactly the blast radius a
    # real stray write would have.
    plan.pair_keys[p] = mid  # repro-check: allow CHK001 -- deliberate fault injection
    return FaultReport(
        FAULT_FLAT_CELL,
        f"plan pair_keys[{p}] moved {kj} -> {mid}",
        leaf,
        kj,
    )


_INJECTORS = {
    FAULT_FLAT_CELL: _inject_flat_cell,
    FAULT_LEAF_MODEL: _inject_leaf_model,
    FAULT_INTERNAL_MODEL: _inject_internal_model,
    FAULT_SLOT_CLOBBER: _inject_slot_clobber,
    FAULT_DENSE_FLIP: _inject_dense_flip,
}


class StallingLock:
    """Delegating lock wrapper that sleeps before every acquire.

    Wraps (never replaces) the underlying stripe ``RLock``, so mutual
    exclusion is preserved: installers swap the wrapper into
    ``ConcurrentDILI._locks[i]`` and threads that captured the old
    object simply fail verified acquisition's identity check and retry.
    """

    def __init__(self, inner, stall_s: float) -> None:
        self.inner = inner
        self.stall_s = stall_s
        self.stalls = 0

    def acquire(self, *args, **kwargs):
        self.stalls += 1
        time.sleep(self.stall_s)
        return self.inner.acquire(*args, **kwargs)

    def release(self) -> None:
        self.inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def stall_stripe(concurrent, stripe: int, stall_s: float) -> StallingLock:
    """Install a :class:`StallingLock` on one stripe of a ConcurrentDILI.

    Returns the wrapper; call :func:`unstall_stripe` with it to restore
    the original lock object.
    """
    wrapper = StallingLock(concurrent._locks[stripe], stall_s)
    concurrent._locks[stripe] = wrapper
    return wrapper


def unstall_stripe(concurrent, stripe: int, wrapper: StallingLock) -> None:
    """Undo :func:`stall_stripe` (restores the wrapped RLock)."""
    if concurrent._locks[stripe] is wrapper:
        concurrent._locks[stripe] = wrapper.inner


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic, seeded plan of (round, kind) injection events."""

    events: tuple[tuple[int, str], ...]

    @classmethod
    def random(
        cls,
        *,
        rounds: int,
        injections: int,
        kinds: tuple[str, ...] = TREE_FAULT_KINDS,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Sample ``injections`` events over ``rounds`` workload rounds.

        Every kind in ``kinds`` appears at least once (provided
        ``injections >= len(kinds)``); rounds are distinct and sorted,
        so the schedule reads as a timeline.
        """
        if injections > rounds:
            raise ValueError("cannot schedule more injections than rounds")
        rng = np.random.default_rng(seed)
        when = np.sort(
            rng.choice(rounds, size=injections, replace=False)
        ).tolist()
        # Guaranteed coverage first, then a random tail; shuffled so
        # coverage kinds are not clustered at the start of the run.
        chosen = [kinds[i % len(kinds)] for i in range(len(kinds))]
        chosen += [
            kinds[int(rng.integers(len(kinds)))]
            for _ in range(max(0, injections - len(kinds)))
        ]
        chosen = chosen[:injections]
        rng.shuffle(chosen)
        return cls(tuple(zip(when, chosen)))

    def kinds_used(self) -> set[str]:
        return {kind for _, kind in self.events}


class FaultRegistry:
    """Process-wide registry of injectable faults.

    One registry typically lives for a whole chaos run: it hands out
    memoized durability injectors by name (the sanctioned
    ``FaultInjector`` construction site, rule CHK006) and applies
    structure-corrupting faults to live indexes, recording every
    successful injection in :attr:`reports`.
    """

    def __init__(self) -> None:
        self._durability: dict[str, FaultInjector] = {}
        self.reports: list[FaultReport] = []

    def durability(self, name: str = "default") -> FaultInjector:
        """The named durability crash-point injector (memoized)."""
        injector = self._durability.get(name)
        if injector is None:
            injector = self._durability[name] = FaultInjector()
        return injector

    def inject_plan(self, kind: str, path, rng):
        """Apply one plan-store file fault (``repro.planstore.corrupt``).

        The on-disk sibling of :meth:`inject`: damages a published plan
        base or delta file instead of a live index.  Returns the
        :class:`~repro.planstore.corrupt.PlanFaultReport` (recorded in
        :attr:`reports`), or ``None`` when not applicable.
        """
        # Imported lazily: planstore pulls in the serving ladder, which
        # imports back into resilience for the health monitor.
        from repro.planstore.corrupt import inject_plan_fault

        report = inject_plan_fault(kind, path, rng)
        if report is not None:
            self.reports.append(report)
        return report

    def inject(self, kind: str, index, rng) -> FaultReport | None:
        """Apply one fault of ``kind`` to ``index``.

        Returns the report, or ``None`` when no detectable injection of
        that kind was possible (e.g. ``dense_flip`` on a non-DILI-LO
        tree) -- the structures are then guaranteed unmodified.
        """
        try:
            injector = _INJECTORS[kind]
        except KeyError:
            raise ValueError(f"unknown fault kind {kind!r}") from None
        report = injector(index, rng)
        if report is not None:
            self.reports.append(report)
        return report

    def inject_any(
        self,
        index,
        rng,
        kinds: tuple[str, ...] = TREE_FAULT_KINDS,
    ) -> FaultReport | None:
        """Inject the first applicable kind from a shuffled ``kinds``."""
        order = list(kinds)
        rng.shuffle(order)
        for kind in order:
            report = self.inject(kind, index, rng)
            if report is not None:
                return report
        return None


#: Shared default registry (mirrors ``durability.NULL_FAULTS``' role:
#: importers that do not need isolation can share one).
DEFAULT_REGISTRY = FaultRegistry()
