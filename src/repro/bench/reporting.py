"""Paper-style table rendering for benchmark output.

Each benchmark prints the same rows/columns as the paper's table or
figure, so output can be compared side by side with the published
numbers (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    col_width: int = 12,
    first_col_width: int = 18,
) -> str:
    """Render an aligned text table.

    Args:
        title: Heading printed above the table.
        columns: Column labels; the first labels the row-name column.
        rows: Row tuples; the first element is the row name, the rest
            are values (floats are rendered with sensible precision).
    """
    def cell(value: object, width: int) -> str:
        if isinstance(value, float):
            if value != value:  # NaN marks inapplicable cells
                text = "-"
            elif abs(value) >= 1000:
                text = f"{value:,.0f}"
            elif abs(value) >= 10:
                text = f"{value:.1f}"
            else:
                text = f"{value:.2f}"
        else:
            text = str(value)
        return text.rjust(width)

    lines = [title, "=" * len(title)]
    header = columns[0].ljust(first_col_width) + "".join(
        c.rjust(col_width) for c in columns[1:]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        line = str(row[0]).ljust(first_col_width) + "".join(
            cell(v, col_width) for v in row[1:]
        )
        lines.append(line)
    return "\n".join(lines)


def print_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    **kwargs,
) -> None:
    """Print :func:`format_table` output with surrounding blank lines."""
    print()
    print(format_table(title, columns, rows, **kwargs))
    print()
