"""Shared infrastructure for the table/figure benchmarks.

Scale
-----
The paper indexes 200-800M keys; pure Python cannot.  Benchmarks run at
a configurable scale (``REPRO_SCALE`` environment variable: ``small``,
``medium`` -- the default -- or ``large``).  The simulated LL cache is
sized *relative to the dataset* (about 1% of the pair bytes) so the
hot-top/cold-leaf regime of the paper's machine is preserved at every
scale; see DESIGN.md's substitution notes.

Method registry
---------------
``METHOD_FACTORIES`` maps the paper's method labels to zero-argument
factories with the paper's representative configurations, adapted to
benchmark scale where the original value is tied to 200M keys (e.g.
ALEX's Gamma = 16 MB at 200M keys corresponds to node budgets around
1 MiB at 10**5 keys).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import DILI, DiliConfig
from repro.baselines import (
    AlexIndex,
    BinarySearchIndex,
    BPlusTree,
    DynamicPGM,
    LippIndex,
    MassTree,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
)
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer

GHZ = 2.5
"""Simulated clock used to convert cycles to nanoseconds."""

DATASETS = ["fb", "wikits", "osm", "books", "logn"]
"""All five paper datasets in Table 4 order."""

MAIN_DATASETS = ["fb", "wikits", "logn"]
"""Section 7.2 keeps these three after dropping OSM/Books to save space."""


@dataclass(frozen=True)
class BenchScale:
    """One benchmark scale configuration.

    Attributes:
        name: Scale label.
        num_keys: Keys per dataset.
        num_queries: Point queries per measurement.
        cache_lines: Simulated LL-cache lines (~1% of pair bytes).
    """

    name: str
    num_keys: int
    num_queries: int

    @property
    def cache_lines(self) -> int:
        return max(512, self.num_keys // 100)


SCALES = {
    "small": BenchScale("small", 50_000, 3_000),
    "medium": BenchScale("medium", 100_000, 4_000),
    "large": BenchScale("large", 200_000, 5_000),
}


def current_scale() -> BenchScale:
    """Scale selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "medium").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        ) from None


def _dili_lo() -> DILI:
    return DILI(DiliConfig(local_optimization=False))


METHOD_FACTORIES: dict[str, Callable[[], object]] = {
    "BinS": BinarySearchIndex,
    "B+Tree(16)": lambda: BPlusTree(16),
    "B+Tree(32)": lambda: BPlusTree(32),
    "B+Tree(64)": lambda: BPlusTree(64),
    "B+Tree(128)": lambda: BPlusTree(128),
    "B+Tree(256)": lambda: BPlusTree(256),
    "B+Tree(512)": lambda: BPlusTree(512),
    "ALEX(16KB)": lambda: AlexIndex(16 * 1024),
    "ALEX(64KB)": lambda: AlexIndex(64 * 1024),
    "ALEX(256KB)": lambda: AlexIndex(256 * 1024),
    "ALEX(1MB)": lambda: AlexIndex(1 << 20),
    "RMI(S)": lambda: RMIIndex(256, "cubic"),
    "RMI(L)": lambda: RMIIndex(16384, "auto"),
    "RS(S)": lambda: RadixSplineIndex(128, 12),
    "RS(L)": lambda: RadixSplineIndex(16, 18),
    "MassTree": MassTree,
    "PGM": lambda: PGMIndex(64),
    "DynPGM": lambda: DynamicPGM(64, base=256),
    "LIPP": LippIndex,
    "DILI-LO": _dili_lo,
    "DILI": DILI,
}

REPRESENTATIVE = [
    "BinS",
    "B+Tree(32)",
    "MassTree",
    "RMI(L)",
    "RS(L)",
    "PGM",
    "ALEX(1MB)",
    "LIPP",
    "DILI-LO",
    "DILI",
]
"""Section 7.2's representative subset used after Table 4."""


def make_index(name: str):
    """Instantiate the method registered under ``name``."""
    try:
        return METHOD_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown method {name!r}") from None


def method_names(representative_only: bool = False) -> list[str]:
    if representative_only:
        return list(REPRESENTATIVE)
    return list(METHOD_FACTORIES)


def query_sample(
    keys: np.ndarray, count: int, seed: int = 1
) -> np.ndarray:
    """Random existing-key point queries (the paper's query workload)."""
    rng = np.random.default_rng(seed)
    return keys[rng.integers(0, len(keys), size=count)]


class BuildCache:
    """Cache of datasets, query batches, built indexes and measurements.

    Builds are the expensive part of every experiment; sharing one cache
    across experiments mirrors the paper's protocol of measuring one
    build per method per dataset.  Used by the pytest benchmarks (via a
    session fixture) and by the programmatic experiment API
    (:mod:`repro.bench.experiments`).
    """

    def __init__(self, scale: BenchScale, seed: int = 7) -> None:
        self.scale = scale
        self.seed = seed
        self._keys: dict[str, np.ndarray] = {}
        self._queries: dict[str, np.ndarray] = {}
        self._indexes: dict[tuple[str, str], object] = {}
        self._lookup: dict[tuple[str, str], tuple] = {}

    def keys(self, dataset: str) -> np.ndarray:
        """Sorted unique keys of ``dataset`` at the cache's scale."""
        if dataset not in self._keys:
            from repro.data import load_dataset

            self._keys[dataset] = load_dataset(
                dataset, self.scale.num_keys, seed=self.seed
            )
        return self._keys[dataset]

    def queries(self, dataset: str) -> np.ndarray:
        """The point-query batch used for every lookup measurement."""
        if dataset not in self._queries:
            self._queries[dataset] = query_sample(
                self.keys(dataset), self.scale.num_queries
            )
        return self._queries[dataset]

    def index(self, method: str, dataset: str):
        """The built index for (method, dataset), building once."""
        key = (method, dataset)
        if key not in self._indexes:
            index = make_index(method)
            index.bulk_load(self.keys(dataset))
            self._indexes[key] = index
        return self._indexes[key]

    def lookup_result(self, method: str, dataset: str) -> tuple:
        """(ns, misses, phases) for one built method on one dataset."""
        key = (method, dataset)
        if key not in self._lookup:
            self._lookup[key] = measure_lookup(
                self.index(method, dataset),
                self.queries(dataset),
                self.scale,
            )
        return self._lookup[key]


def measure_lookup(
    index,
    queries: np.ndarray,
    scale: BenchScale,
    *,
    warm_fraction: float = 0.3,
) -> tuple[float, float, dict[str, float]]:
    """Average simulated lookup time over a query batch.

    The first ``warm_fraction`` of queries warms the simulated cache
    (steady state); the remainder is measured.

    Returns:
        (nanoseconds per lookup, LL-cache misses per lookup,
        per-phase nanoseconds dict -- 'step1'/'step2' where the index
        reports them).
    """
    tracer = CostTracer(CacheSimulator(scale.cache_lines))
    split = int(len(queries) * warm_fraction)
    for key in queries[:split]:
        index.get(float(key), tracer)
    tracer.reset_counters()
    measured = queries[split:]
    for key in measured:
        index.get(float(key), tracer)
    n = max(len(measured), 1)
    phases = {
        name: cycles / GHZ / n
        for name, cycles in tracer.phase_cycles.items()
        if name in ("step1", "step2")
    }
    return (
        tracer.total_cycles / GHZ / n,
        tracer.cache_misses / n,
        phases,
    )
