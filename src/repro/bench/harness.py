"""Shared infrastructure for the table/figure benchmarks.

Scale
-----
The paper indexes 200-800M keys; pure Python cannot.  Benchmarks run at
a configurable scale (``REPRO_SCALE`` environment variable: ``small``,
``medium`` -- the default -- or ``large``).  The simulated LL cache is
sized *relative to the dataset* (about 1% of the pair bytes) so the
hot-top/cold-leaf regime of the paper's machine is preserved at every
scale; see DESIGN.md's substitution notes.

Method registry
---------------
``METHOD_FACTORIES`` maps the paper's method labels to zero-argument
factories with the paper's representative configurations, adapted to
benchmark scale where the original value is tied to 200M keys (e.g.
ALEX's Gamma = 16 MB at 200M keys corresponds to node budgets around
1 MiB at 10**5 keys).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import DILI, DiliConfig
from repro.baselines import (
    AlexIndex,
    BinarySearchIndex,
    BPlusTree,
    DynamicPGM,
    LippIndex,
    MassTree,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
)
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer

GHZ = 2.5
"""Simulated clock used to convert cycles to nanoseconds."""

DATASETS = ["fb", "wikits", "osm", "books", "logn"]
"""All five paper datasets in Table 4 order."""

MAIN_DATASETS = ["fb", "wikits", "logn"]
"""Section 7.2 keeps these three after dropping OSM/Books to save space."""


@dataclass(frozen=True)
class BenchScale:
    """One benchmark scale configuration.

    Attributes:
        name: Scale label.
        num_keys: Keys per dataset.
        num_queries: Point queries per measurement.
        cache_lines: Simulated LL-cache lines (~1% of pair bytes).
    """

    name: str
    num_keys: int
    num_queries: int

    @property
    def cache_lines(self) -> int:
        return max(512, self.num_keys // 100)


SCALES = {
    "small": BenchScale("small", 50_000, 3_000),
    "medium": BenchScale("medium", 100_000, 4_000),
    "large": BenchScale("large", 200_000, 5_000),
}


def current_scale() -> BenchScale:
    """Scale selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "medium").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        ) from None


def _dili_lo() -> DILI:
    return DILI(DiliConfig(local_optimization=False))


METHOD_FACTORIES: dict[str, Callable[[], object]] = {
    "BinS": BinarySearchIndex,
    "B+Tree(16)": lambda: BPlusTree(16),
    "B+Tree(32)": lambda: BPlusTree(32),
    "B+Tree(64)": lambda: BPlusTree(64),
    "B+Tree(128)": lambda: BPlusTree(128),
    "B+Tree(256)": lambda: BPlusTree(256),
    "B+Tree(512)": lambda: BPlusTree(512),
    "ALEX(16KB)": lambda: AlexIndex(16 * 1024),
    "ALEX(64KB)": lambda: AlexIndex(64 * 1024),
    "ALEX(256KB)": lambda: AlexIndex(256 * 1024),
    "ALEX(1MB)": lambda: AlexIndex(1 << 20),
    "RMI(S)": lambda: RMIIndex(256, "cubic"),
    "RMI(L)": lambda: RMIIndex(16384, "auto"),
    "RS(S)": lambda: RadixSplineIndex(128, 12),
    "RS(L)": lambda: RadixSplineIndex(16, 18),
    "MassTree": MassTree,
    "PGM": lambda: PGMIndex(64),
    "DynPGM": lambda: DynamicPGM(64, base=256),
    "LIPP": LippIndex,
    "DILI-LO": _dili_lo,
    "DILI": DILI,
}

REPRESENTATIVE = [
    "BinS",
    "B+Tree(32)",
    "MassTree",
    "RMI(L)",
    "RS(L)",
    "PGM",
    "ALEX(1MB)",
    "LIPP",
    "DILI-LO",
    "DILI",
]
"""Section 7.2's representative subset used after Table 4."""


def make_index(name: str):
    """Instantiate the method registered under ``name``."""
    try:
        return METHOD_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown method {name!r}") from None


def method_names(representative_only: bool = False) -> list[str]:
    if representative_only:
        return list(REPRESENTATIVE)
    return list(METHOD_FACTORIES)


def query_sample(
    keys: np.ndarray, count: int, seed: int = 1
) -> np.ndarray:
    """Random existing-key point queries (the paper's query workload)."""
    rng = np.random.default_rng(seed)
    return keys[rng.integers(0, len(keys), size=count)]


class BuildCache:
    """Cache of datasets, query batches, built indexes and measurements.

    Builds are the expensive part of every experiment; sharing one cache
    across experiments mirrors the paper's protocol of measuring one
    build per method per dataset.  Used by the pytest benchmarks (via a
    session fixture) and by the programmatic experiment API
    (:mod:`repro.bench.experiments`).
    """

    def __init__(self, scale: BenchScale, seed: int = 7) -> None:
        self.scale = scale
        self.seed = seed
        self._keys: dict[str, np.ndarray] = {}
        self._queries: dict[str, np.ndarray] = {}
        self._indexes: dict[tuple[str, str], object] = {}
        self._lookup: dict[tuple[str, str], tuple] = {}

    def keys(self, dataset: str) -> np.ndarray:
        """Sorted unique keys of ``dataset`` at the cache's scale."""
        if dataset not in self._keys:
            from repro.data import load_dataset

            self._keys[dataset] = load_dataset(
                dataset, self.scale.num_keys, seed=self.seed
            )
        return self._keys[dataset]

    def queries(self, dataset: str) -> np.ndarray:
        """The point-query batch used for every lookup measurement."""
        if dataset not in self._queries:
            self._queries[dataset] = query_sample(
                self.keys(dataset), self.scale.num_queries
            )
        return self._queries[dataset]

    def index(self, method: str, dataset: str):
        """The built index for (method, dataset), building once."""
        key = (method, dataset)
        if key not in self._indexes:
            index = make_index(method)
            index.bulk_load(self.keys(dataset))
            self._indexes[key] = index
        return self._indexes[key]

    def lookup_result(self, method: str, dataset: str) -> tuple:
        """(ns, misses, phases) for one built method on one dataset."""
        key = (method, dataset)
        if key not in self._lookup:
            self._lookup[key] = measure_lookup(
                self.index(method, dataset),
                self.queries(dataset),
                self.scale,
            )
        return self._lookup[key]


@dataclass(frozen=True)
class BatchMeasurement:
    """One batch-vs-scalar lookup measurement.

    Attributes:
        scalar_s: Wall-clock seconds of the per-key ``get`` loop.
        batch_s: Wall-clock seconds of one ``get_batch`` call with the
            flat plan already compiled (best of ``repeats``).
        compile_s: Wall-clock seconds of the first ``get_batch`` call,
            which includes compiling the plan.
        sim_ns_per_op: Simulated nanoseconds per lookup from the traced
            batch path (same cost model as :func:`measure_lookup`).
        sim_misses_per_op: Simulated LL-cache misses per lookup.
    """

    scalar_s: float
    batch_s: float
    compile_s: float
    sim_ns_per_op: float
    sim_misses_per_op: float

    @property
    def speedup(self) -> float:
        """Wall-clock scalar/batch ratio (plan warm)."""
        return self.scalar_s / self.batch_s if self.batch_s > 0 else float("inf")


def measure_batch_lookup(
    index,
    queries: np.ndarray,
    scale: BenchScale,
    *,
    repeats: int = 3,
) -> BatchMeasurement:
    """Wall-clock batch-vs-scalar comparison plus simulated batch cost.

    Runs the scalar ``get`` loop and the vectorized ``get_batch`` over
    the same query batch, checks they return identical results, and
    traces the batch path through the simulated cost model (the replay
    charges exactly the scalar loop's events, so the simulated numbers
    are directly comparable with :func:`measure_lookup`).
    """
    q = np.ascontiguousarray(queries, dtype=np.float64)
    t0 = time.perf_counter()
    batch_out = index.get_batch(q)
    compile_s = time.perf_counter() - t0
    batch_s = compile_s
    for _ in range(max(repeats - 1, 0)):
        t0 = time.perf_counter()
        batch_out = index.get_batch(q)
        batch_s = min(batch_s, time.perf_counter() - t0)

    key_list = q.tolist()
    get = index.get
    t0 = time.perf_counter()
    scalar_out = [get(k) for k in key_list]
    scalar_s = time.perf_counter() - t0
    if scalar_out != batch_out:
        raise AssertionError("get_batch disagrees with the scalar get loop")

    tracer = CostTracer(CacheSimulator(scale.cache_lines))
    try:
        index.get_batch(q, tracer)
    except TypeError:
        # Wrapper without a tracer-aware batch path (e.g. the
        # concurrent one): trace through the wrapped plain index.
        base = getattr(index, "index", index)
        base = getattr(base, "index", base)
        base.get_batch(q, tracer)
    n = max(len(q), 1)
    return BatchMeasurement(
        scalar_s=scalar_s,
        batch_s=batch_s,
        compile_s=compile_s,
        sim_ns_per_op=tracer.total_cycles / GHZ / n,
        sim_misses_per_op=tracer.cache_misses / n,
    )


def batch_lookup_rows(
    cache: "BuildCache",
    datasets: Sequence[str] = DATASETS,
    method: str = "DILI",
) -> list[list[object]]:
    """Batch-mode benchmark rows: simulated cost next to wall-clock.

    One row per dataset: simulated ns and LL misses per lookup (from
    the traced batch path), then the measured wall-clock of the scalar
    loop and of the warm batch call, and their ratio.
    """
    rows: list[list[object]] = []
    for dataset in datasets:
        index = cache.index(method, dataset)
        queries = cache.queries(dataset)
        m = measure_batch_lookup(index, queries, cache.scale)
        rows.append(
            [
                dataset,
                m.sim_ns_per_op,
                m.sim_misses_per_op,
                m.scalar_s * 1e3,
                m.batch_s * 1e3,
                m.speedup,
            ]
        )
    return rows


BATCH_COLUMNS = [
    "Dataset",
    "sim ns/op",
    "misses/op",
    "scalar (ms)",
    "batch (ms)",
    "speedup x",
]
"""Column labels matching :func:`batch_lookup_rows`."""


@dataclass(frozen=True)
class WriteBatchMeasurement:
    """One batch-vs-scalar write measurement.

    Two comparisons at the same tree size, both against the identical
    scalar ``insert`` loop semantics:

    * *serving state* (the mixed-workload scenario of Fig. 7 /
      Table 10): the flat read plan is compiled and must stay usable,
      so every scalar insert patches or splices the plan per operation
      while ``insert_batch`` maintains it once per batch.
    * *tree only*: no plan exists; the comparison isolates the batched
      descent and grouped slot prediction from plan maintenance.

    Attributes:
        scalar_s / batch_s: Serving-state wall-clock seconds.
        tree_scalar_s / tree_batch_s: Tree-only wall-clock seconds.
        writes: Operations per measured run.
        sim_parity: True when a :class:`CostTracer` charged bit-equal
            totals (cycles, memory accesses, cache misses) to the
            scalar loop and the batch call on twin trees.
        plan_patches / plan_subtree_recompiles / plan_recompiles:
            Counter values of the serving-state batch index afterwards.
    """

    scalar_s: float
    batch_s: float
    tree_scalar_s: float
    tree_batch_s: float
    writes: int
    sim_parity: bool
    plan_patches: int
    plan_subtree_recompiles: int
    plan_recompiles: int

    @property
    def speedup(self) -> float:
        """Serving-state scalar/batch wall-clock ratio."""
        return self.scalar_s / self.batch_s if self.batch_s > 0 else float("inf")

    @property
    def tree_speedup(self) -> float:
        """Tree-only scalar/batch wall-clock ratio."""
        if self.tree_batch_s <= 0:
            return float("inf")
        return self.tree_scalar_s / self.tree_batch_s


def _fresh_keys(keys: np.ndarray, count: int, seed: int) -> np.ndarray:
    """``count`` keys inside the data range but absent from ``keys``."""
    rng = np.random.default_rng(seed)
    lo, hi = float(keys[0]), float(keys[-1])
    out = np.empty(0, dtype=np.float64)
    while len(out) < count:
        cand = np.unique(rng.uniform(lo, hi, 2 * count))
        cand = cand[~np.isin(cand, keys)]
        out = np.unique(np.concatenate([out, cand]))
    rng.shuffle(out)
    return out[:count]


def measure_batch_write(
    keys: np.ndarray,
    scale: BenchScale,
    *,
    writes: int = 256,
    parity_keys: int = 20_000,
    parity_writes: int = 2_000,
    seed: int = 23,
) -> WriteBatchMeasurement:
    """Wall-clock batch-vs-scalar insert comparison plus trace parity.

    Builds twin DILI trees from ``keys`` and inserts the same fresh
    keys into each -- a scalar ``insert`` loop on one, one
    ``insert_batch`` call on the other -- first in serving state (flat
    plan compiled and kept consistent throughout) and then tree-only.
    Twin results are verified identical.  A separate pair of smaller
    twins is traced through the simulated cost model to check the
    batch path charges exactly the scalar loop's events.
    """
    new = _fresh_keys(keys, writes, seed)
    vals = [None] * writes

    def build(compile_plan: bool) -> DILI:
        index = DILI()
        index.bulk_load(keys, [None] * len(keys))
        if compile_plan:
            index.get_batch(keys[:16])
        return index

    # Serving state: plan alive, every write keeps it consistent.
    a, b = build(True), build(True)
    t0 = time.perf_counter()
    for k, v in zip(new.tolist(), vals):
        a.insert(k, v)
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    b.insert_batch(new, vals)
    batch_s = time.perf_counter() - t0
    if list(a.items()) != list(b.items()):
        raise AssertionError("insert_batch disagrees with the scalar loop")
    if a._flat is None or b._flat is None:
        raise AssertionError("a write dropped the compiled plan")
    stats = (b.plan_patches, b.plan_subtree_recompiles, b.plan_recompiles)

    # Tree only: no plan, no maintenance on either side.
    a, b = build(False), build(False)
    t0 = time.perf_counter()
    for k, v in zip(new.tolist(), vals):
        a.insert(k, v)
    tree_scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    b.insert_batch(new, vals)
    tree_batch_s = time.perf_counter() - t0
    if list(a.items()) != list(b.items()):
        raise AssertionError("insert_batch disagrees with the scalar loop")

    # Simulated-cost parity on smaller twins (trace replay is per key,
    # so the subset keeps the check fast without weakening it).
    pk = keys[:: max(1, len(keys) // parity_keys)]
    pnew = _fresh_keys(pk, parity_writes, seed + 1)
    ta = CostTracer(CacheSimulator(scale.cache_lines))
    tb = CostTracer(CacheSimulator(scale.cache_lines))
    a = DILI()
    a.bulk_load(pk, [None] * len(pk))
    b = DILI()
    b.bulk_load(pk, [None] * len(pk))
    for k in pnew.tolist():
        a.insert(k, None, tracer=ta)
    b.insert_batch(pnew, [None] * len(pnew), tracer=tb)
    sim_parity = (
        ta.total_cycles == tb.total_cycles
        and ta.mem_accesses == tb.mem_accesses
        and ta.cache_misses == tb.cache_misses
        and ta.phase_cycles == tb.phase_cycles
        and list(a.items()) == list(b.items())
    )
    return WriteBatchMeasurement(
        scalar_s=scalar_s,
        batch_s=batch_s,
        tree_scalar_s=tree_scalar_s,
        tree_batch_s=tree_batch_s,
        writes=writes,
        sim_parity=sim_parity,
        plan_patches=stats[0],
        plan_subtree_recompiles=stats[1],
        plan_recompiles=stats[2],
    )


@dataclass(frozen=True)
class MixedWorkloadMeasurement:
    """One YCSB-style batched read/write mixed-workload run.

    Attributes:
        ops: Total operations executed.
        reads / writes: Read and write operation counts.
        wall_s: Total wall-clock seconds across all rounds.
        full_recompiles: Full plan recompiles *during* the workload
            (beyond the initial lazy compile) -- the CI gate requires 0.
        subtree_recompiles / patches: Incremental-maintenance counters.
        plan_alive: True when the flat plan survived every round.
    """

    ops: int
    reads: int
    writes: int
    wall_s: float
    full_recompiles: int
    subtree_recompiles: int
    patches: int
    plan_alive: bool

    @property
    def wall_mops(self) -> float:
        return self.ops / self.wall_s / 1e6 if self.wall_s > 0 else 0.0


def measure_mixed_workload(
    keys: np.ndarray,
    *,
    rounds: int = 20,
    ops_per_round: int = 1024,
    write_fraction: float = 0.05,
    seed: int = 29,
) -> MixedWorkloadMeasurement:
    """Run a batched read/write mix against one DILI in serving state.

    Each round issues one ``get_batch`` over existing keys and one
    write batch sized by ``write_fraction`` -- rounds alternate between
    ``insert_batch`` of fresh keys and ``delete_batch`` of keys a
    previous round inserted, so the tree stays near its initial size.
    The flat plan is compiled before the first round and must survive
    the whole run via patches and subtree splices; the lazy-recompile
    counter is read before and after to prove no full recompile
    happened between structural changes.
    """
    rng = np.random.default_rng(seed)
    per_round_writes = max(1, int(round(ops_per_round * write_fraction)))
    per_round_reads = ops_per_round - per_round_writes
    index = DILI()
    index.bulk_load(keys, [None] * len(keys))
    index.get_batch(keys[:16])  # compile the plan: serving state
    base_recompiles = index.plan_recompiles
    pool = _fresh_keys(keys, per_round_writes * rounds, seed + 1)
    inserted: list[np.ndarray] = []
    reads = writes = 0
    wall = 0.0
    for r in range(rounds):
        qs = keys[rng.integers(0, len(keys), per_round_reads)]
        if r % 2 == 0 or not inserted:
            chunk = pool[:per_round_writes]
            pool = pool[per_round_writes:]
            t0 = time.perf_counter()
            index.get_batch(qs)
            index.insert_batch(chunk, [None] * len(chunk))
            wall += time.perf_counter() - t0
            inserted.append(chunk)
        else:
            chunk = inserted.pop(0)
            t0 = time.perf_counter()
            index.get_batch(qs)
            index.delete_batch(chunk)
            wall += time.perf_counter() - t0
        reads += per_round_reads
        writes += len(chunk)
    index.validate()
    return MixedWorkloadMeasurement(
        ops=reads + writes,
        reads=reads,
        writes=writes,
        wall_s=wall,
        full_recompiles=index.plan_recompiles - base_recompiles,
        subtree_recompiles=index.plan_subtree_recompiles,
        patches=index.plan_patches,
        plan_alive=index._flat is not None,
    )


@dataclass(frozen=True)
class ReadScalingMeasurement:
    """Concurrent batch-read scaling and contention measurement.

    Attributes:
        thread_counts: Reader-thread counts measured (e.g. ``(1,2,4,8)``).
        ops_per_s: Lock-free ``get_batch`` lookups/s by reader count,
            with no writer running.
        contention_lockfree_ops: Lookups/s of 4 lock-free readers while
            a writer thread churns the tree under stripe/exclusive
            locks (readers descend the published plan, never block).
        contention_locked_ops: Same readers and writer, but every read
            forced through ``exclusive()`` -- the pre-epoch protocol
            where batch reads serialized against writers and each other.
        wrong_reads: Reads (across every phase) that returned a value
            inconsistent with the loaded base data.  Must be zero.
        lost_updates: Writer-inserted keys missing after the contention
            phases.  Must be zero.
        plan_publishes: Plan versions published during the lock-free
            contention phase.
        epoch_pins: Epoch pins taken during the lock-free contention
            phase.
        cpu_count: ``os.cpu_count()`` on the measuring machine; pure
            thread scaling is only meaningful when it is >= the thread
            count (CPython threads share one interpreter lock).
    """

    thread_counts: tuple[int, ...]
    ops_per_s: dict[int, float]
    contention_lockfree_ops: float
    contention_locked_ops: float
    wrong_reads: int
    lost_updates: int
    plan_publishes: int
    epoch_pins: int
    cpu_count: int

    def scaling(self, threads: int) -> float:
        """Throughput at ``threads`` readers relative to one reader."""
        base = self.ops_per_s[self.thread_counts[0]]
        return self.ops_per_s[threads] / base if base > 0 else 0.0

    @property
    def scaling_4(self) -> float:
        return self.scaling(4) if 4 in self.ops_per_s else 0.0

    @property
    def contention_speedup(self) -> float:
        """Lock-free vs exclusive-locked read throughput under writers."""
        if self.contention_locked_ops <= 0:
            return float("inf")
        return self.contention_lockfree_ops / self.contention_locked_ops


def measure_concurrent_read_scaling(
    keys: np.ndarray,
    *,
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    batch: int = 256,
    rounds: int = 30,
    writer_keys: int = 1024,
    writer_chunk: int = 128,
    repeats: int = 2,
    seed: int = 31,
) -> ReadScalingMeasurement:
    """Measure epoch-pinned batch-read scaling and lock contention.

    Loads one :class:`~repro.core.concurrent.ConcurrentDILI` with
    ``keys`` (value = position), compiles and publishes the flat plan,
    then runs three phases:

    1. **Pure scaling** -- for each count in ``thread_counts``, that
       many reader threads each issue ``rounds`` lock-free
       ``get_batch`` calls over pre-drawn base-key batches; every
       result is checked against the loaded values.
    2. **Lock-free contention** -- 4 readers as above while a writer
       thread inserts fresh keys with ``insert_batch`` and churns them
       with ``update_batch``/``bulk_insert`` (all lock-taking paths).
    3. **Locked contention** -- identical workload, but each read is
       forced through ``exclusive()`` to price the pre-epoch protocol
       where batch reads serialized against writers.

    Wrong reads and lost writer inserts are counted, never tolerated:
    callers gate both at zero.
    """
    import threading

    from repro import ConcurrentDILI

    rng = np.random.default_rng(seed)
    index = ConcurrentDILI()
    index.bulk_load(keys, list(range(len(keys))))
    index.get_batch(keys[:16])  # compile + publish the plan
    wrong_reads = 0
    lost_updates = 0

    def draw_probes(n_threads: int) -> list[list[tuple[np.ndarray, list]]]:
        per_thread = []
        for _ in range(n_threads):
            plan = []
            for _ in range(rounds):
                idx = rng.integers(0, len(keys), size=batch)
                plan.append((keys[idx], [int(i) for i in idx]))
            per_thread.append(plan)
        return per_thread

    def run_readers(
        n_threads: int, read_one: Callable
    ) -> tuple[float, int]:
        """Run the pre-drawn probe plans; return (wall_s, wrong)."""
        probes = draw_probes(n_threads)
        barrier = threading.Barrier(n_threads + 1)
        wrong = [0] * n_threads
        errors: list[BaseException] = []

        def reader(tid: int) -> None:
            try:
                barrier.wait()
                bad = 0
                for q, expect in probes[tid]:
                    if read_one(q) != expect:
                        bad += 1
                wrong[tid] = bad
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        t0 = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        if errors:
            raise errors[0]
        return wall, sum(wrong)

    # Phase 1: pure lock-free reader scaling, no writers.
    ops_per_s: dict[int, float] = {}
    for n in thread_counts:
        wall, wrong = run_readers(n, index.get_batch)
        wrong_reads += wrong
        ops_per_s[n] = n * rounds * batch / wall if wall > 0 else 0.0

    # Phases 2-3: 4 readers vs one lock-taking writer.  The writer
    # inserts a disjoint pool of fresh keys chunk by chunk, then churns
    # them (update_batch + periodic bulk_insert re-upserts) until the
    # readers finish, so stripe and exclusive locks stay hot the whole
    # phase.  Base keys are never touched: reader expectations hold.
    def run_contended(read_one: Callable, pool: np.ndarray) -> float:
        stop = threading.Event()
        writer_errors: list[BaseException] = []

        def writer() -> None:
            try:
                # Insert the whole pool even if readers finish first:
                # the lost-update check audits every key written here.
                values = [-1] * writer_chunk
                for start in range(0, len(pool), writer_chunk):
                    chunk = pool[start : start + writer_chunk]
                    index.insert_batch(chunk, values[: len(chunk)])
                # Structural churn: delete and re-insert rotating
                # chunks (long stripe/exclusive critical sections --
                # the workload the pre-epoch protocol stalls reads
                # behind), plus periodic whole-pool value updates.
                # Delete/insert always run as a pair so the pool is
                # fully present whenever the loop observes ``stop``.
                nchunks = max(1, len(pool) // writer_chunk)
                generation = 0
                while not stop.is_set():
                    generation += 1
                    start = (generation % nchunks) * writer_chunk
                    chunk = pool[start : start + writer_chunk]
                    index.delete_batch(chunk)
                    index.insert_batch(chunk, [generation] * len(chunk))
                    if generation % 8 == 0:
                        index.update_batch(
                            pool, [generation] * len(pool)
                        )
            except BaseException as exc:  # pragma: no cover
                writer_errors.append(exc)

        churn = threading.Thread(target=writer)
        churn.start()
        try:
            wall, wrong = run_readers(4, read_one)
        finally:
            stop.set()
            churn.join()
        if writer_errors:
            raise writer_errors[0]
        nonlocal wrong_reads
        wrong_reads += wrong
        return 4 * rounds * batch / wall if wall > 0 else 0.0

    def locked_read(q: np.ndarray) -> list:
        with index.exclusive():
            return index.index.get_batch(q)

    # Best-of-``repeats`` on each contended phase: thread scheduling on
    # a busy runner is noisy, and (as with the warm batch timings
    # above) the best observed throughput is the stable estimate of
    # what each protocol can sustain.  Re-running over the same pool is
    # sound -- inserts of present keys are no-ops and the churn loop is
    # self-restoring, so the lost-update audit still covers every key.
    pools = np.array_split(
        _fresh_keys(keys, 2 * writer_keys, seed + 1), 2
    )
    stats0 = index.lock_stats
    contention_lockfree = max(
        run_contended(index.get_batch, pools[0])
        for _ in range(max(repeats, 1))
    )
    stats1 = index.lock_stats
    contention_locked = max(
        run_contended(locked_read, pools[1])
        for _ in range(max(repeats, 1))
    )

    for pool in pools:
        present = index.contains_batch(pool)
        lost_updates += sum(1 for p in present if not p)
    index.index.validate()

    return ReadScalingMeasurement(
        thread_counts=tuple(thread_counts),
        ops_per_s=ops_per_s,
        contention_lockfree_ops=contention_lockfree,
        contention_locked_ops=contention_locked,
        wrong_reads=wrong_reads,
        lost_updates=lost_updates,
        plan_publishes=(
            stats1["plan_publishes"] - stats0["plan_publishes"]
        ),
        epoch_pins=stats1["epoch_pins"] - stats0["epoch_pins"],
        cpu_count=os.cpu_count() or 1,
    )


@dataclass(frozen=True)
class ShardedThroughputMeasurement:
    """Multi-process sharded batch-read throughput by worker count.

    Every worker count -- including 1 -- serves through the full
    coordinator/pipe/worker-process stack, so the scaling ratio
    isolates parallelism from serialization overhead.

    Attributes:
        worker_counts: Worker-process counts measured (e.g. ``(1, 2)``).
        ops_per_s: Batch-get lookups/s by worker count (best of
            ``rounds``), every result audited against the loaded
            values.
        wrong_reads: Lookups that returned a value inconsistent with
            the loaded data.  Must be zero.
        num_keys: Keys loaded per configuration.
        batch: Keys per measured ``get_batch`` call.
        cpu_count: ``os.cpu_count()`` on the measuring machine; process
            scaling is only physically possible when it is >= the
            worker count.
    """

    worker_counts: tuple[int, ...]
    ops_per_s: dict[int, float]
    wrong_reads: int
    num_keys: int
    batch: int
    cpu_count: int

    def scaling(self, workers: int) -> float:
        """Throughput at ``workers`` relative to one worker."""
        base = self.ops_per_s[self.worker_counts[0]]
        return self.ops_per_s[workers] / base if base > 0 else 0.0

    @property
    def scaling_2(self) -> float:
        return self.scaling(2) if 2 in self.ops_per_s else 0.0


def measure_sharded_throughput(
    keys: np.ndarray,
    *,
    worker_counts: Sequence[int] = (1, 2),
    batch: int = 32_768,
    rounds: int = 5,
    seed: int = 37,
) -> ShardedThroughputMeasurement:
    """Measure sharded multi-process batch-read scaling.

    For each worker count, creates a fresh range-sharded directory
    (``tuning="none"`` -- the grid search is a build-time cost priced
    by :func:`measure_shard_tuning`, not a serving cost), serves it
    with that many dedicated worker processes reading zero-copy from
    the published plans, and times repeated ``get_batch`` calls over
    one pre-drawn existing-key batch.  Large batches amortize the pipe
    round-trip the way the paper's batch API amortizes interpreter
    dispatch; every returned value is audited against the loaded data.
    """
    import tempfile

    from repro.sharding import ShardedDILI

    keys = np.ascontiguousarray(keys, dtype=np.float64)
    values = list(range(len(keys)))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(keys), size=batch)
    queries = keys[idx]
    expected = [int(i) for i in idx]
    ops_per_s: dict[int, float] = {}
    wrong_reads = 0
    for workers in worker_counts:
        with tempfile.TemporaryDirectory(
            prefix="repro-shard-bench-"
        ) as tmp:
            with ShardedDILI.create(
                tmp,
                keys,
                values,
                num_shards=workers,
                partition="range",
                tuning="none",
                processes=True,
                sync=False,
            ) as index:
                index.get_batch(queries[:256])  # warm pages + workers
                best = float("inf")
                got: list = []
                for _ in range(max(rounds, 1)):
                    t0 = time.perf_counter()
                    got = index.get_batch(queries)
                    best = min(best, time.perf_counter() - t0)
                wrong_reads += sum(
                    1 for g, e in zip(got, expected) if g != e
                )
                ops_per_s[workers] = batch / best if best > 0 else 0.0
    return ShardedThroughputMeasurement(
        worker_counts=tuple(worker_counts),
        ops_per_s=ops_per_s,
        wrong_reads=wrong_reads,
        num_keys=len(keys),
        batch=batch,
        cpu_count=os.cpu_count() or 1,
    )


def mixed_distribution_keys(
    num_keys: int, seed: int = 41
) -> np.ndarray:
    """A deliberately non-stationary keyset for the tuning benchmark.

    Three contiguous regimes -- a uniform span, a band of tight
    Gaussian clusters, and a heavy lognormal tail -- so quantile range
    shards land on genuinely different local distributions and a
    single global configuration has to compromise.
    """
    rng = np.random.default_rng(seed)
    third = num_keys // 3
    uniform = rng.uniform(0.0, 1.0e7, size=third)
    centers = rng.integers(0, 50, size=third).astype(np.float64)
    clusters = 2.0e7 + centers * 1.0e5 + rng.normal(0.0, 40.0, size=third)
    tail = 5.0e7 + np.exp(
        rng.normal(14.0, 1.2, size=num_keys - 2 * third)
    )
    return np.unique(np.concatenate((uniform, clusters, tail))).astype(
        np.float64
    )


@dataclass(frozen=True)
class ShardTuningMeasurement:
    """Heterogeneous per-shard tuning vs one global configuration.

    Both variants use the identical quantile partition and the
    identical query workload; only the per-shard bulk-load parameters
    differ.  Costs come from the deterministic simulated cost model
    (one LRU cache per shard, matching the per-process reality), so
    the comparison is machine-noise-free.

    Attributes:
        num_shards: Shards in both partitions.
        local_cycles_per_op: Simulated cycles/lookup with per-shard
            fitted configs.
        global_cycles_per_op: Same workload with the single best
            global config everywhere.
        local_configs: The fitted ``(omega, rho)`` per shard.
        global_config: The ``(omega, rho)`` the global fit chose.
    """

    num_shards: int
    local_cycles_per_op: float
    global_cycles_per_op: float
    local_configs: tuple
    global_config: tuple

    @property
    def gain_pct(self) -> float:
        """How much cheaper per-shard tuning is, in percent."""
        if self.global_cycles_per_op <= 0:
            return 0.0
        return 100.0 * (
            1.0 - self.local_cycles_per_op / self.global_cycles_per_op
        )


def measure_shard_tuning(
    keys: np.ndarray | None = None,
    *,
    num_keys: int = 60_000,
    num_shards: int = 3,
    num_queries: int = 4_096,
    seed: int = 42,
) -> ShardTuningMeasurement:
    """Score per-shard distribution tuning against one global config.

    Plans the same quantile partition twice (``tuning="local"`` vs
    ``tuning="global"``), bulk-loads every shard under its chosen
    config, routes one shared random existing-key workload, and traces
    each shard's queries through its own simulated LRU cache.  Reports
    total simulated cycles per lookup for both variants.
    """
    from repro.sharding.partition import build_range_shards

    if keys is None:
        keys = mixed_distribution_keys(num_keys, seed=seed)
    keys = np.ascontiguousarray(keys, dtype=np.float64)
    rng = np.random.default_rng(seed + 1)
    queries = keys[rng.integers(0, len(keys), size=num_queries)]

    def score(tuning: str) -> tuple[float, tuple]:
        part = build_range_shards(
            keys, None, num_shards, tuning=tuning, seed=seed
        )
        shard_ids = part.router.route(queries)
        cycles = 0.0
        configs = []
        for j, spec in enumerate(part.shards):
            configs.append((spec.config.omega, spec.config.rho))
            index = DILI(spec.config)
            index.bulk_load(spec.keys, list(spec.values))
            mine = queries[shard_ids == j]
            if len(mine) == 0:
                continue
            lines = max(512, len(spec.keys) // 100)
            tracer = CostTracer(CacheSimulator(lines))
            index.get_batch(mine, tracer)
            cycles += tracer.total_cycles
        return cycles / max(len(queries), 1), tuple(configs)

    local_cost, local_configs = score("local")
    global_cost, global_configs = score("global")
    return ShardTuningMeasurement(
        num_shards=num_shards,
        local_cycles_per_op=local_cost,
        global_cycles_per_op=global_cost,
        local_configs=local_configs,
        global_config=global_configs[0],
    )


def measure_lookup(
    index,
    queries: np.ndarray,
    scale: BenchScale,
    *,
    warm_fraction: float = 0.3,
) -> tuple[float, float, dict[str, float]]:
    """Average simulated lookup time over a query batch.

    The first ``warm_fraction`` of queries warms the simulated cache
    (steady state); the remainder is measured.

    Returns:
        (nanoseconds per lookup, LL-cache misses per lookup,
        per-phase nanoseconds dict -- 'step1'/'step2' where the index
        reports them).
    """
    tracer = CostTracer(CacheSimulator(scale.cache_lines))
    split = int(len(queries) * warm_fraction)
    for key in queries[:split]:
        index.get(float(key), tracer)
    tracer.reset_counters()
    measured = queries[split:]
    for key in measured:
        index.get(float(key), tracer)
    n = max(len(measured), 1)
    phases = {
        name: cycles / GHZ / n
        for name, cycles in tracer.phase_cycles.items()
        if name in ("step1", "step2")
    }
    return (
        tracer.total_cycles / GHZ / n,
        tracer.cache_misses / n,
        phases,
    )
