"""Experiment harness regenerating the paper's tables and figures.

:mod:`repro.bench.harness` provides the scale configuration, the method
registry (one factory per paper configuration), and the measurement
loops; :mod:`repro.bench.reporting` renders paper-style tables.  Each
file under ``benchmarks/`` is one table or figure (see DESIGN.md).
"""

from repro.bench.harness import (
    BenchScale,
    BuildCache,
    DATASETS,
    MAIN_DATASETS,
    METHOD_FACTORIES,
    SCALES,
    current_scale,
    make_index,
    measure_lookup,
    method_names,
)
from repro.bench.reporting import format_table, print_table

__all__ = [
    "BenchScale",
    "BuildCache",
    "DATASETS",
    "MAIN_DATASETS",
    "METHOD_FACTORIES",
    "SCALES",
    "current_scale",
    "format_table",
    "make_index",
    "measure_lookup",
    "method_names",
    "print_table",
]
