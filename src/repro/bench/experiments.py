"""Programmatic experiment API: the paper's core tables as functions.

Each function reproduces one table/figure of the paper and returns an
:class:`ExperimentResult` -- title, columns, rows, and the shape notes a
reader should check against the paper.  The pytest files under
``benchmarks/`` call these functions and assert on the rows; the CLI
(``python -m repro report``) calls them directly and renders a markdown
report, no pytest required.

Only the experiments whose logic is reusable downstream live here (the
lookup matrix, miss counts, DILI structure, memory, and workload
throughput); one-off sweeps stay inside their benchmark files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import (
    BuildCache,
    DATASETS,
    MAIN_DATASETS,
    make_index,
    method_names,
)
from repro.bench.reporting import format_table
from repro.core.stats import tree_stats
from repro.data import split_initial
from repro.workloads.generator import NAMED_SPECS, make_workload
from repro.workloads.runner import run_workload


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table/figure.

    Attributes:
        name: Short identifier ("table4", "fig7", ...).
        title: Human-readable heading.
        columns: Column labels (first labels the row-name column).
        rows: Row tuples; first element is the row name.
        notes: Shape expectations to compare against the paper.
    """

    name: str
    title: str
    columns: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)

    def cell(self, row_name: str, column: str) -> object:
        """Value at (row_name, column); KeyError when absent."""
        try:
            col = self.columns.index(column)
        except ValueError:
            raise KeyError(f"no column {column!r}") from None
        for row in self.rows:
            if row[0] == row_name:
                return row[col]
        raise KeyError(f"no row {row_name!r}")

    def to_text(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        def cell(value: object) -> str:
            if isinstance(value, float):
                return "-" if value != value else f"{value:.2f}"
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * len(self.columns))
        for row in self.rows:
            lines.append(
                "| " + " | ".join(cell(v) for v in row) + " |"
            )
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"* {note}")
        lines.append("")
        return "\n".join(lines)


def lookup_times(cache: BuildCache) -> ExperimentResult:
    """Table 4: simulated lookup time (ns) of every configuration."""
    rows = []
    for method in method_names():
        row: list = [method]
        for dataset in DATASETS:
            ns, _, _ = cache.lookup_result(method, dataset)
            row.append(ns)
        rows.append(row)
    return ExperimentResult(
        name="table4",
        title=(
            f"Table 4: simulated lookup time (ns), "
            f"scale={cache.scale.name} ({cache.scale.num_keys} keys)"
        ),
        columns=["Method"] + DATASETS,
        rows=rows,
        notes=[
            "DILI should be fastest on every dataset (paper: 116-153 ns"
            " vs LIPP 152-197).",
            "Classical structures (BinS, B+Tree, MassTree) trail the"
            " learned ones by 2-4x.",
        ],
    )


def cache_misses(cache: BuildCache) -> ExperimentResult:
    """Table 5: LL-cache misses per query, representative methods."""
    rows = []
    for method in method_names(representative_only=True):
        row: list = [method]
        for dataset in DATASETS:
            _, misses, _ = cache.lookup_result(method, dataset)
            row.append(misses)
        rows.append(row)
    return ExperimentResult(
        name="table5",
        title=(
            f"Table 5: simulated LL-cache misses per query, "
            f"scale={cache.scale.name}"
        ),
        columns=["Method"] + DATASETS,
        rows=rows,
        notes=[
            "DILI triggers the fewest misses (paper FB: 4.88 vs LIPP"
            " 7.94, B+Tree 10.27)."
        ],
    )


def dili_structure(cache: BuildCache) -> ExperimentResult:
    """Table 6: DILI heights and conflicts per dataset."""
    rows = []
    for dataset in DATASETS:
        index = cache.index("DILI", dataset)
        st = tree_stats(index)
        rows.append(
            [
                dataset,
                st.min_height,
                st.max_height,
                st.avg_height,
                1000.0 * st.nested_leaves / max(st.num_pairs, 1),
                st.conflicts_per_1k,
            ]
        )
    return ExperimentResult(
        name="table6",
        title=(
            f"Table 6: DILI structure statistics, "
            f"scale={cache.scale.name}"
        ),
        columns=[
            "Dataset",
            "min h",
            "max h",
            "avg h",
            "conflicts/1K",
            "conf pairs/1K",
        ],
        rows=rows,
        notes=[
            "Conflict ordering should be Logn/WikiTS far below"
            " FB/Books, OSM between (paper: 1.2 / 44 / 118 / 220 /"
            " 227 per 1K).",
        ],
    )


def index_sizes(cache: BuildCache) -> ExperimentResult:
    """Fig. 6a: index memory (MB) of the representative methods."""
    rows = []
    for method in method_names(representative_only=True):
        row: list = [method]
        for dataset in DATASETS:
            row.append(
                cache.index(method, dataset).memory_bytes() / 1e6
            )
        rows.append(row)
    return ExperimentResult(
        name="fig6a",
        title=f"Fig. 6a: index size (MB), scale={cache.scale.name}",
        columns=["Method"] + DATASETS,
        rows=rows,
        notes=[
            "RMI/RS smallest; DILI above B+Tree/PGM; LIPP far above"
            " everything (paper: one order of magnitude).",
        ],
    )


def workload_throughput(
    cache: BuildCache,
    methods: list[str] | None = None,
    total_ops: int | None = None,
) -> ExperimentResult:
    """Fig. 7: simulated throughput (Mops) on the four named mixes."""
    methods = methods or [
        "B+Tree(32)",
        "MassTree",
        "DynPGM",
        "ALEX(1MB)",
        "LIPP",
        "DILI",
    ]
    workloads = ["Read-Only", "Read-Heavy", "Write-Heavy", "Write-Only"]
    scale = cache.scale
    total_ops = total_ops or max(scale.num_queries * 3, 9_000)
    rows = {m: [m] for m in methods}
    for dataset in MAIN_DATASETS:
        keys = cache.keys(dataset)
        initial, pool = split_initial(keys, 0.5, seed=3)
        for method in methods:
            for wl_name in workloads:
                spec = NAMED_SPECS[wl_name].scaled(total_ops)
                if spec.inserts > len(pool):
                    spec = NAMED_SPECS[wl_name].scaled(len(pool))
                index = make_index(method)
                index.bulk_load(initial)
                ops = make_workload(spec, keys, pool, seed=11)
                result = run_workload(
                    index,
                    ops,
                    name=wl_name,
                    cache_lines=scale.cache_lines,
                )
                rows[method].append(result.sim_mops)
    columns = ["Method"] + [
        f"{ds[:4]}:{wl[:7]}"
        for ds in MAIN_DATASETS
        for wl in workloads
    ]
    return ExperimentResult(
        name="fig7",
        title=(
            f"Fig. 7: simulated throughput (Mops), "
            f"scale={scale.name}"
        ),
        columns=columns,
        rows=[rows[m] for m in methods],
        notes=[
            "DILI highest throughput on every dataset x workload;"
            " PGM collapses as writes grow (the logarithmic method).",
        ],
    )


CORE_EXPERIMENTS = {
    "table4": lookup_times,
    "table5": cache_misses,
    "table6": dili_structure,
    "fig6a": index_sizes,
    "fig7": workload_throughput,
}
"""Registry for the CLI report command."""


def run_report(
    cache: BuildCache, names: list[str] | None = None
) -> str:
    """Run the selected core experiments and render a markdown report."""
    names = names or list(CORE_EXPERIMENTS)
    parts = [
        "# DILI reproduction report",
        "",
        f"Scale: {cache.scale.name} ({cache.scale.num_keys:,} keys per"
        f" dataset, {cache.scale.num_queries:,} queries,"
        f" {cache.scale.cache_lines:,} simulated cache lines).",
        "",
    ]
    for name in names:
        try:
            experiment = CORE_EXPERIMENTS[name]
        except KeyError:
            raise ValueError(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(CORE_EXPERIMENTS)}"
            ) from None
        parts.append(experiment(cache).to_markdown())
    return "\n".join(parts)
