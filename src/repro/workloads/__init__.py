"""Workload generation and execution (Sections 7.3, 7.4, Appendix A).

The paper evaluates indexes under named operation mixes -- Read-only,
Read-Heavy, Write-Heavy, Write-Only, plus deletion-, distribution-shift-
and skewed-write variants.  :mod:`repro.workloads.generator` builds the
operation streams; :mod:`repro.workloads.runner` executes them against
any :class:`~repro.baselines.base.BaseIndex`-compatible index and
reports throughput (simulated and wall-clock).
"""

from repro.workloads.generator import (
    Operation,
    WorkloadSpec,
    deletion_workload,
    make_workload,
    skewed_insert_keys,
    zipf_indices,
)
from repro.workloads.runner import WorkloadResult, run_workload

__all__ = [
    "Operation",
    "WorkloadResult",
    "WorkloadSpec",
    "deletion_workload",
    "make_workload",
    "run_workload",
    "skewed_insert_keys",
    "zipf_indices",
]
