"""Execute workloads against an index and measure throughput.

Two clocks are reported:

* **Simulated throughput** -- operations per simulated second under the
  cycle/cache cost model, which is what reproduces the paper's Fig. 7-10
  shapes (the paper's absolute ops/s are C++ wall-clock; our Python
  wall-clock would mostly measure interpreter overhead).
* **Wall-clock throughput** -- real operations per second, reported for
  completeness.

Insert and delete operations are charged their lookup-path cost plus a
store; structural work (node creation, adjustment) shows up through the
extra memory the rebuilt paths touch on subsequent operations, plus an
explicit charge proportional to the pairs moved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.base import UnsupportedOperation
from repro.simulate.cache import CacheSimulator
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import CostTracer
from repro.workloads.generator import Operation


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one workload execution.

    Attributes:
        name: Workload name.
        operations: Operations executed.
        sim_mops: Simulated throughput in million operations per second.
        wall_mops: Wall-clock throughput in million ops per second.
        sim_ns_per_op: Average simulated nanoseconds per operation.
        hits: Lookups that found their key.
        inserted: Inserts that added a new pair.
        deleted: Deletes that removed a pair.
    """

    name: str
    operations: int
    sim_mops: float
    wall_mops: float
    sim_ns_per_op: float
    hits: int
    inserted: int
    deleted: int


def run_workload(
    index,
    ops: list[tuple[Operation, float]],
    *,
    name: str = "workload",
    cache_lines: int = 2048,
    ghz: float = 2.5,
    warmup: int = 500,
) -> WorkloadResult:
    """Run ``ops`` against ``index`` and measure both clocks.

    Args:
        index: Any object with get/insert/delete taking a tracer on get.
        ops: Operation stream from the generator.
        name: Label for the result.
        cache_lines: Simulated LL-cache size.
        ghz: Simulated clock for the ns conversion.
        warmup: Leading operations that warm the cache without being
            counted (mirrors steady-state hardware measurement).

    Raises:
        UnsupportedOperation: If the stream needs an operation the index
            does not support (the caller should skip such combinations,
            as the paper does for RMI/RS inserts and LIPP deletes).
    """
    tracer = CostTracer(CacheSimulator(cache_lines))
    hits = inserted = deleted = 0
    warmup = min(warmup, len(ops) // 10)
    for op, key in ops[:warmup]:
        _apply(index, op, key, tracer)
    tracer.reset_counters()
    measured = ops[warmup:]
    moved_before = getattr(index, "moved_pairs", 0)
    wall_start = time.perf_counter()
    for op, key in measured:
        outcome = _apply(index, op, key, tracer)
        if op is Operation.LOOKUP:
            hits += outcome
        elif op is Operation.INSERT:
            inserted += outcome
        else:
            deleted += outcome
    wall = time.perf_counter() - wall_start
    n = len(measured)
    # Structural maintenance (element shifts, node rebuilds, run merges)
    # is charged per moved pair: ~5 cycles of copy work plus one cache
    # line load per 8 pairs moved.
    moved = getattr(index, "moved_pairs", 0) - moved_before
    tracer.compute(moved * (_C.linear_search_step + _C.cache_miss / 8.0))
    sim_seconds = tracer.total_cycles / (ghz * 1e9)
    return WorkloadResult(
        name=name,
        operations=n,
        sim_mops=n / sim_seconds / 1e6 if sim_seconds > 0 else float("inf"),
        wall_mops=n / wall / 1e6 if wall > 0 else float("inf"),
        sim_ns_per_op=tracer.total_cycles / ghz / n if n else 0.0,
        hits=hits,
        inserted=inserted,
        deleted=deleted,
    )


def _apply(index, op: Operation, key: float, tracer: CostTracer) -> int:
    """Execute one operation, charging simulated cost; returns success."""
    if op is Operation.LOOKUP:
        return 0 if index.get(key, tracer) is None else 1
    if op is Operation.INSERT:
        # The insert's navigation replays the lookup path; charge it,
        # then the store itself.
        index.get(key, tracer)
        ok = index.insert(key, "w")
        tracer.compute(_C.linear_model)
        if ok:
            return 1
        return 0
    if op is Operation.DELETE:
        index.get(key, tracer)
        ok = index.delete(key)
        tracer.compute(_C.linear_model)
        return 1 if ok else 0
    raise ValueError(f"unknown operation {op!r}")  # pragma: no cover
