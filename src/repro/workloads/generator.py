"""Workload stream generation (Section 7.3 and Appendix A.2/A.3).

The paper's protocol: split the dataset into an initial half ``P0``
(bulk loaded) and an insert pool ``P1``; a workload is a random mix of
point queries (keys drawn from the whole dataset) and insertions (keys
drawn from ``P1``), with the four named mixes below.  Deletion
workloads (Section 7.4) bulk load everything and mix lookups with
deletions of random keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class Operation(Enum):
    """One workload step kind."""

    LOOKUP = "lookup"
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class WorkloadSpec:
    """A named operation mix, in paper proportions.

    The paper uses 100M/50M counts; ``scale`` rescales the total while
    keeping the ratio, so e.g. Read-Heavy at scale 30_000 issues 20_000
    lookups and 10_000 inserts.
    """

    name: str
    lookups: int
    inserts: int
    deletes: int = 0

    def scaled(self, total: int) -> "WorkloadSpec":
        own_total = self.lookups + self.inserts + self.deletes
        factor = total / own_total
        return WorkloadSpec(
            name=self.name,
            lookups=int(self.lookups * factor),
            inserts=int(self.inserts * factor),
            deletes=int(self.deletes * factor),
        )


READ_ONLY = WorkloadSpec("Read-Only", lookups=100, inserts=0)
READ_HEAVY = WorkloadSpec("Read-Heavy", lookups=100, inserts=50)
WRITE_HEAVY = WorkloadSpec("Write-Heavy", lookups=50, inserts=100)
WRITE_ONLY = WorkloadSpec("Write-Only", lookups=0, inserts=100)
DELETE_READ_HEAVY = WorkloadSpec("Read-Heavy(del)", lookups=100, inserts=0,
                                 deletes=50)
DELETE_HEAVY = WorkloadSpec("Deletion-Heavy", lookups=50, inserts=0,
                            deletes=100)

NAMED_SPECS = {
    spec.name: spec
    for spec in (
        READ_ONLY,
        READ_HEAVY,
        WRITE_HEAVY,
        WRITE_ONLY,
        DELETE_READ_HEAVY,
        DELETE_HEAVY,
    )
}


def zipf_indices(
    n: int, count: int, rng: np.random.Generator, theta: float = 0.99
) -> np.ndarray:
    """Zipfian-distributed indices into ``range(n)`` (YCSB-style skew).

    Hot indices are scattered over the range (not clustered at 0) via a
    fixed permutation derived from the RNG, so skew means *popularity*
    skew rather than key-space locality.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / ranks**theta
    weights /= weights.sum()
    hot_order = rng.permutation(n)
    picks = rng.choice(n, size=count, p=weights)
    return hot_order[picks]


def make_workload(
    spec: WorkloadSpec,
    all_keys: np.ndarray,
    insert_pool: np.ndarray,
    seed: int = 0,
    query_distribution: str = "uniform",
) -> list[tuple[Operation, float]]:
    """Build a shuffled operation stream for ``spec``.

    Args:
        spec: Operation mix (already scaled to the desired total).
        all_keys: Full key universe; lookup keys are drawn from it, as
            in the paper ("query keys are randomly selected from
            KEYS(P)").
        insert_pool: Keys to insert (the paper's ``P1``); ``spec`` must
            not ask for more inserts than the pool holds.
        seed: RNG seed; streams are deterministic given it.
        query_distribution: "uniform" (the paper's protocol) or "zipf"
            (YCSB-style popularity skew over the lookup keys).

    Returns:
        List of (operation, key), randomly interleaved.
    """
    if spec.inserts > len(insert_pool):
        raise ValueError(
            f"spec wants {spec.inserts} inserts, pool has "
            f"{len(insert_pool)}"
        )
    if query_distribution not in ("uniform", "zipf"):
        raise ValueError(
            "query_distribution must be 'uniform' or 'zipf'"
        )
    rng = np.random.default_rng(seed)
    ops: list[tuple[Operation, float]] = []
    if spec.lookups:
        if query_distribution == "zipf":
            picks = zipf_indices(len(all_keys), spec.lookups, rng)
        else:
            picks = rng.integers(0, len(all_keys), size=spec.lookups)
        ops.extend((Operation.LOOKUP, float(all_keys[i])) for i in picks)
    if spec.inserts:
        picks = rng.choice(len(insert_pool), size=spec.inserts,
                           replace=False)
        ops.extend(
            (Operation.INSERT, float(insert_pool[i])) for i in picks
        )
    if spec.deletes:
        picks = rng.choice(len(all_keys), size=spec.deletes, replace=False)
        ops.extend((Operation.DELETE, float(all_keys[i])) for i in picks)
    order = rng.permutation(len(ops))
    return [ops[i] for i in order]


def deletion_workload(
    spec: WorkloadSpec, keys: np.ndarray, seed: int = 0
) -> list[tuple[Operation, float]]:
    """Section 7.4 stream: lookups and deletions over a loaded index."""
    return make_workload(spec, keys, np.array([]), seed=seed)


def skewed_insert_keys(
    source: np.ndarray,
    target: np.ndarray,
    count: int,
    compress: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """Appendix A.3's skewed write keys.

    Maps keys of a *different* distribution (``source``, the paper's Q)
    into the first ``compress`` fraction of the loaded dataset's key
    range, producing the pair set Q' whose inserts concentrate into a
    narrow region of the index.
    """
    if not 0.0 < compress <= 1.0:
        raise ValueError("compress must be in (0, 1]")
    rng = np.random.default_rng(seed)
    lo = float(target[0])
    span = (float(target[-1]) - lo) * compress
    src_lo = float(source[0])
    src_span = max(float(source[-1]) - src_lo, 1.0)
    mapped = lo + (source - src_lo) / src_span * span
    mapped = np.unique(np.floor(mapped))
    mapped = np.setdiff1d(mapped, target)
    if len(mapped) < count:
        raise ValueError(
            f"only {len(mapped)} distinct mapped keys, need {count}"
        )
    picks = rng.choice(len(mapped), size=count, replace=False)
    return np.sort(mapped[picks])
