"""From-scratch implementations of every competitor in Section 7.

All indexes share the :class:`~repro.baselines.base.BaseIndex` interface
and report their memory touches to the same tracing protocol as DILI, so
the benchmark harness can compare simulated lookup cost, cache misses,
memory and throughput across methods exactly as the paper's tables do.

| Paper name | Class                     | Updates | Notes                          |
|------------|---------------------------|---------|--------------------------------|
| BinS       | BinarySearchIndex         | no      | whole-array binary search      |
| B+Tree     | BPlusTree                 | yes     | stx::btree-style, node size Omega |
| MassTree   | MassTree                  | yes     | trie of B+Trees over key slices |
| RMI        | RMIIndex                  | no      | two-stage, linear or cubic root |
| RS         | RadixSplineIndex          | no      | greedy spline + radix table    |
| PGM        | PGMIndex / DynamicPGM     | static/yes | epsilon-bounded PLA, LSM inserts |
| ALEX       | AlexIndex                 | yes     | gapped arrays, power-of-2 fanout |
| LIPP       | LippIndex                 | insert  | precise positions, no deletes  |

:class:`FITingTree` (Galakatos et al., SIGMOD'19) is included as an
extension beyond the paper's evaluation set.
"""

from repro.baselines.alex import AlexIndex
from repro.baselines.base import BaseIndex, UnsupportedOperation
from repro.baselines.binary_search import BinarySearchIndex
from repro.baselines.btree import BPlusTree
from repro.baselines.fiting_tree import FITingTree
from repro.baselines.lipp import LippIndex
from repro.baselines.masstree import MassTree
from repro.baselines.pgm import DynamicPGM, PGMIndex
from repro.baselines.radix_spline import RadixSplineIndex
from repro.baselines.rmi import RMIIndex

__all__ = [
    "AlexIndex",
    "BaseIndex",
    "BinarySearchIndex",
    "BPlusTree",
    "DynamicPGM",
    "FITingTree",
    "LippIndex",
    "MassTree",
    "PGMIndex",
    "RadixSplineIndex",
    "RMIIndex",
    "UnsupportedOperation",
]
