"""Common interface of all competitor indexes.

Every baseline is a :class:`BaseIndex`: bulk-loadable from sorted unique
keys, point-queryable with optional cost tracing, and introspectable for
memory accounting.  Methods that a structure genuinely does not support
(the paper excludes RMI/RS from update workloads and LIPP from deletion
workloads for this reason) raise :class:`UnsupportedOperation` so the
workload runner can skip them exactly as the paper does.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro.simulate.tracer import NULL_TRACER, Tracer

Pair = tuple


class UnsupportedOperation(NotImplementedError):
    """The index structure does not support this operation."""


class BaseIndex(ABC):
    """Abstract one-dimensional ordered index.

    Class attributes declare capabilities so benchmark code can select
    applicable methods without try/except probing:

    Attributes:
        name: Display name used in paper-style tables.
        supports_insert: Whether :meth:`insert` works.
        supports_delete: Whether :meth:`delete` works.
    """

    name: str = "base"
    supports_insert: bool = False
    supports_delete: bool = False

    @abstractmethod
    def bulk_load(
        self, keys: np.ndarray, values: list | np.ndarray | None = None
    ) -> None:
        """Build from sorted, strictly increasing keys."""

    @abstractmethod
    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        """Point lookup; None when absent."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Modelled C++ memory footprint of the index structure."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored pairs."""

    def insert(self, key: float, value: object) -> bool:
        """Insert a pair; False if the key already exists."""
        raise UnsupportedOperation(f"{self.name} does not support insertion")

    def delete(self, key: float) -> bool:
        """Delete a key; False if it was absent."""
        raise UnsupportedOperation(f"{self.name} does not support deletion")

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        """All pairs with lo <= key < hi in ascending order."""
        raise UnsupportedOperation(
            f"{self.name} does not support range queries"
        )

    def items(self) -> Iterator[Pair]:
        """All pairs in ascending key order (default: via range_query)."""
        yield from self.range_query(-np.inf, np.inf)

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    @staticmethod
    def check_bulk_input(
        keys: np.ndarray, values: list | np.ndarray | None
    ) -> tuple[np.ndarray, list]:
        """Validate and normalize bulk-load input (shared by subclasses)."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if len(keys) > 1 and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be sorted and strictly increasing")
        if values is None:
            values = list(range(len(keys)))
        else:
            values = list(values)
            if len(values) != len(keys):
                raise ValueError("values must match keys in length")
        return keys, values
