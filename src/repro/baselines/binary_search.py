"""BinS: binary search over the whole sorted key array.

The paper's simplest baseline.  Every probe halves a range spanning the
entire dataset, so almost every iteration touches a cold cache line --
which is exactly why BinS sits near the bottom of Table 4 despite its
O(log n) asymptotics.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id


class BinarySearchIndex(BaseIndex):
    """Sorted-array index answered by binary search."""

    name = "BinS"

    def __init__(self) -> None:
        self._keys = np.array([], dtype=np.float64)
        self._values: list = []
        self._region = region_id()

    def bulk_load(self, keys, values=None) -> None:
        self._keys, self._values = self.check_bulk_input(keys, values)

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        keys = self._keys
        lo, hi = 0, len(keys) - 1
        mem = tracer.mem
        compute = tracer.compute
        while lo <= hi:
            mid = (lo + hi) // 2
            mem(self._region, mid * 8)
            compute(_C.exp_search_step)
            k = keys[mid]
            if k == key:
                mem(self._region, mid * 8 + len(keys) * 8)  # value fetch
                return self._values[mid]
            if k < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        start = int(np.searchsorted(self._keys, lo, side="left"))
        end = int(np.searchsorted(self._keys, hi, side="left"))
        return [
            (float(self._keys[i]), self._values[i]) for i in range(start, end)
        ]

    def memory_bytes(self) -> int:
        # The sorted key + pointer arrays are the whole structure.
        return 16 * len(self._keys)

    def __len__(self) -> int:
        return len(self._keys)
