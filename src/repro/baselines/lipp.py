"""LIPP (Wu et al., VLDB'21): updatable learned index, precise positions.

LIPP's defining trait -- which DILI's local optimization borrows -- is
that every key sits *exactly* where its node's model predicts, with
prediction conflicts resolved by nesting a child node in the slot.  What
LIPP lacks, and what the paper's Section 1 criticizes, is distribution
awareness: the root model is a single regression over the whole dataset
and node arrays are not enlarged, so skewed data yields many conflicts,
long traversal chains, and an order of magnitude more memory (Fig. 6a).

This implementation reuses the repository's conflict-resolving slot
allocator (:func:`repro.core.local_opt.local_opt`) with enlargement
disabled, which is precisely the LIPP placement discipline.  Inserts
trigger LIPP-style subtree rebuilds when a subtree's average access
depth degrades.  Deletion is unsupported, matching the paper ("LIPP is
excluded as it does not support deletions").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.core.local_opt import LocalOptStats, fit_leaf_model, local_opt
from repro.core.nodes import LeafNode
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer

_LIPP_ENLARGE = 5.0
"""LIPP's build gap ratio: node arrays hold ~5 slots per key (the
original implementation's BUILD_GAP_RATIO), which is the source of the
order-of-magnitude memory overhead Fig. 6a reports."""


class LippIndex(BaseIndex):
    """LIPP over one root node with nested conflict nodes.

    Args:
        rebuild_threshold: Rebuild a subtree when its average access
            depth exceeds this multiple of the depth right after the
            last rebuild.
        max_node_slots: Upper bound on a single node's entry array, as
            in the original implementation where FMCD bounds node sizes;
            large datasets therefore resolve through several levels (the
            paper measures 5.8-7.9 cache misses per LIPP lookup).
    """

    name = "LIPP"
    supports_insert = True

    def __init__(
        self,
        rebuild_threshold: float = 2.0,
        max_node_slots: int = 8192,
    ) -> None:
        if rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must exceed 1")
        if max_node_slots < 64:
            raise ValueError("max_node_slots must be >= 64")
        self.rebuild_threshold = rebuild_threshold
        self.max_node_slots = max_node_slots
        self._root: LeafNode | None = None
        self._count = 0
        self.opt_stats = LocalOptStats()
        self.rebuild_count = 0
        self.moved_pairs = 0
        """Pairs redistributed by conflict nodes and subtree rebuilds."""

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._count = len(keys)
        self.opt_stats = LocalOptStats()
        if len(keys) == 0:
            self._root = None
            return
        pairs = [(float(keys[i]), values[i]) for i in range(len(keys))]
        root = LeafNode(pairs[0][0], pairs[-1][0] + 1.0)
        self._node_opt(root, pairs, stats=self.opt_stats)
        self._root = root

    def _node_opt(self, node: LeafNode, pairs: list, stats=None) -> None:
        """Local-opt with LIPP's gap ratio and bounded node size."""
        fanout = max(2, min(int(_LIPP_ENLARGE * len(pairs)),
                            self.max_node_slots))
        model = fit_leaf_model([p[0] for p in pairs], fanout)
        local_opt(node, pairs, enlarge=_LIPP_ENLARGE, fanout=fanout,
                  model=model, stats=stats,
                  max_fanout=self.max_node_slots)

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        node = self._root
        if node is None:
            return None
        while True:
            tracer.mem(node.region)
            tracer.compute(_C.linear_model)
            pos = node.predict_slot(key)
            # Real LIPP checks the node's type bitmap before the entry
            # array (BITMAP_GET on typeBitmap); the bitmap vector lives
            # apart from the entries, costing one more memory touch.
            tracer.mem(node.region, 64 + 16 * len(node.slots) + pos // 512)
            tracer.mem(node.region, 64 + pos * 16)
            entry = node.slots[pos]
            if entry is None:
                return None
            if type(entry) is tuple:
                tracer.compute(_C.branch)
                return entry[1] if entry[0] == key else None
            node = entry

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        if self._root is None:
            root = LeafNode(key, key + 1.0)
            self._node_opt(root, [(key, value)])
            self._root = root
            self._count = 1
            return True
        inserted = self._insert_to_node(self._root, (key, value))
        if inserted:
            self._count += 1
        return inserted

    def _insert_to_node(self, node: LeafNode, pair: Pair) -> bool:
        pos = node.predict_slot(pair[0])
        entry = node.slots[pos]
        if entry is None:
            node.slots[pos] = pair
            node.delta += 1
            not_exist = True
        elif type(entry) is tuple:
            if entry[0] == pair[0]:
                not_exist = False
            else:
                child = LeafNode(
                    min(entry[0], pair[0]), max(entry[0], pair[0])
                )
                self._node_opt(child, sorted([entry, pair]))
                node.slots[pos] = child
                self.moved_pairs += 2
                node.delta += 1 + child.delta
                not_exist = True
        else:
            before = entry.delta
            not_exist = self._insert_to_node(entry, pair)
            node.delta += 1 + entry.delta - before
        if not_exist:
            node.num_pairs += 1
            if (
                node.delta / node.num_pairs
                > self.rebuild_threshold * node.kappa
            ):
                self._rebuild(node)
        return not_exist

    def _rebuild(self, node: LeafNode) -> None:
        """LIPP subtree rebuild: refit the model, redistribute in place."""
        pairs = list(node.iter_pairs())
        self.moved_pairs += len(pairs)
        self._node_opt(node, pairs, stats=self.opt_stats)
        self.rebuild_count += 1

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        out: list[Pair] = []
        if self._root is not None:
            self._collect(self._root, lo, hi, out)
        return out

    def _collect(
        self, node: LeafNode, lo: float, hi: float, out: list[Pair]
    ) -> bool:
        start = node.predict_slot(lo)
        for i in range(start, len(node.slots)):
            entry = node.slots[i]
            if entry is None:
                continue
            if type(entry) is tuple:
                if entry[0] >= hi:
                    return False
                if entry[0] >= lo:
                    out.append(entry)
            else:
                if not self._collect(entry, lo, hi, out):
                    return False
        return True

    def memory_bytes(self) -> int:
        if self._root is None:
            return 0
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64 + 16 * len(node.slots)
            for entry in node.slots:
                if entry is not None and type(entry) is not tuple:
                    stack.append(entry)
        return total

    def __len__(self) -> int:
        return self._count

    def max_depth(self) -> int:
        """Deepest nesting chain (diagnostic)."""

        def depth(node: LeafNode) -> int:
            best = 1
            for entry in node.slots:
                if entry is not None and type(entry) is not tuple:
                    best = max(best, 1 + depth(entry))
            return best

        return depth(self._root) if self._root is not None else 0
