"""RadixSpline (Kipf et al., aiDM'20): single-pass spline + radix table.

A greedy spline-corridor pass over the sorted keys picks spline points
such that linear interpolation between consecutive points approximates
every key's rank within ``max_error``.  A radix table over the top
``radix_bits`` of the key narrows the spline-point search to a handful of
candidates.  Lookup: radix table -> binary search spline points ->
interpolate -> error-bounded binary search in the data.  Like RMI, the
structure is static (no updates), matching the paper's exclusions.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id

_KEY_BITS = 53  # keys are integer-valued float64 below 2**53


class RadixSplineIndex(BaseIndex):
    """Spline-based learned index with a radix prefix table.

    Args:
        max_error: Corridor half-width epsilon; lookup searches at most
            ``2 * max_error`` keys.  The paper's RS (S)/(L) configs trade
            this off against the table size.
        radix_bits: Width of the key prefix indexing the table
            (table has ``2**radix_bits + 1`` four-byte entries).
    """

    name = "RS"

    def __init__(self, max_error: int = 32, radix_bits: int = 18) -> None:
        if max_error < 1:
            raise ValueError("max_error must be >= 1")
        if not 1 <= radix_bits <= 28:
            raise ValueError("radix_bits must be in [1, 28]")
        self.max_error = max_error
        self.radix_bits = radix_bits
        self.name = f"RS(e={max_error},r={radix_bits})"
        self._keys = np.array([], dtype=np.float64)
        self._values: list = []
        self._spline_keys = np.array([], dtype=np.float64)
        self._spline_ranks = np.array([], dtype=np.float64)
        self._table = np.array([], dtype=np.int64)
        self._shift = 0
        self._min_key = 0
        self._keys_region = region_id()
        self._spline_region = region_id()
        self._table_region = region_id()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._keys = keys
        self._values = values
        n = len(keys)
        if n == 0:
            return
        sk, sr = _greedy_spline(keys, self.max_error)
        self._spline_keys = sk
        self._spline_ranks = sr
        # Radix table over the key prefix, relative to the minimum key so
        # the prefix space is actually used.
        self._min_key = int(keys[0])
        span = int(keys[-1]) - self._min_key
        self._shift = max(span.bit_length() - self.radix_bits, 0)
        size = (span >> self._shift) + 2 if span > 0 else 2
        prefixes = (sk.astype(np.int64) - self._min_key) >> self._shift
        # table[p] = first spline index whose prefix is >= p.
        self._table = np.searchsorted(
            prefixes, np.arange(size, dtype=np.int64), side="left"
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        n = len(self._keys)
        if n == 0:
            return None
        sk = self._spline_keys
        if key < sk[0] or key > sk[-1]:
            return None
        tracer.phase("step1")
        prefix = (int(key) - self._min_key) >> self._shift
        tracer.compute(2 * _C.branch)  # prefix shift + mask
        tracer.mem(self._table_region, prefix * 4)
        lo_idx = int(self._table[prefix])
        tracer.mem(self._table_region, (prefix + 1) * 4)
        hi_idx = int(self._table[prefix + 1]) if prefix + 1 < len(
            self._table
        ) else len(sk)
        # Find the spline segment: last spline key <= key within
        # [lo_idx - 1, hi_idx].  (The point before the prefix window can
        # still start the covering segment.)
        lo = max(lo_idx - 1, 0)
        hi = min(hi_idx, len(sk) - 1)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            tracer.mem(self._spline_region, mid * 16)
            tracer.compute(_C.exp_search_step)
            if sk[mid] <= key:
                lo = mid
            else:
                hi = mid
        seg = lo
        if sk[hi] <= key:
            seg = hi
        seg = min(seg, len(sk) - 2)
        x0, x1 = sk[seg], sk[seg + 1]
        y0, y1 = self._spline_ranks[seg], self._spline_ranks[seg + 1]
        tracer.compute(_C.linear_model)  # interpolation
        if x1 > x0:
            pos = y0 + (y1 - y0) * (key - x0) / (x1 - x0)
        else:
            pos = y0
        tracer.phase("step2")
        lo = int(pos) - self.max_error
        hi = int(pos) + self.max_error + 1
        if lo < 0:
            lo = 0
        if hi > n:
            hi = n
        keys = self._keys
        while hi - lo > 1:
            mid = (lo + hi) // 2
            tracer.mem(self._keys_region, mid * 8)
            tracer.compute(_C.exp_search_step)
            if keys[mid] <= key:
                lo = mid
            else:
                hi = mid
        tracer.phase("done")
        if lo < n and keys[lo] == key:
            tracer.mem(self._keys_region, n * 8 + lo * 8)
            return self._values[lo]
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return 16 * len(self._spline_keys) + 4 * len(self._table)

    def __len__(self) -> int:
        return len(self._keys)

    def spline_size(self) -> int:
        """Number of spline points (diagnostic)."""
        return len(self._spline_keys)


def _greedy_spline(
    keys: np.ndarray, epsilon: int
) -> tuple[np.ndarray, np.ndarray]:
    """GreedySplineCorridor: spline points bounding interpolation error.

    Maintains the slope corridor from the current base spline point that
    keeps every seen point within ``epsilon`` of the interpolation line;
    when a point falls outside, the previous point becomes the next
    spline point and the corridor restarts.
    """
    n = len(keys)
    if n == 1:
        return keys.copy(), np.zeros(1)
    points_x = [float(keys[0])]
    points_y = [0.0]
    base_x, base_y = float(keys[0]), 0.0
    upper = np.inf
    lower = -np.inf
    prev_x, prev_y = base_x, base_y
    for i in range(1, n):
        x, y = float(keys[i]), float(i)
        dx = x - base_x
        slope = (y - base_y) / dx
        if slope > upper or slope < lower:
            # Emit the previous point and restart the corridor from it.
            points_x.append(prev_x)
            points_y.append(prev_y)
            base_x, base_y = prev_x, prev_y
            dx = x - base_x
            upper = (y + epsilon - base_y) / dx
            lower = (y - epsilon - base_y) / dx
        else:
            upper = min(upper, (y + epsilon - base_y) / dx)
            lower = max(lower, (y - epsilon - base_y) / dx)
        prev_x, prev_y = x, y
    if points_x[-1] != float(keys[-1]):
        points_x.append(float(keys[-1]))
        points_y.append(float(n - 1))
    return np.array(points_x), np.array(points_y)
