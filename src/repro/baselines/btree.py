"""A B+Tree in the style of stx::btree (the paper's B+Tree baseline).

Internal nodes hold separator keys and child pointers; leaves hold the
pairs and are chained for range scans.  The node size ``order`` (the
paper's Omega parameter, swept over {16..512} in Table 4) is the maximum
number of children per internal node and of pairs per leaf.

Lookups binary-search within every node on the descent; those in-node
probes are the repeated cache misses the paper's Section 4.4 blames for
B+Tree's lookup times.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.check.errors import InvariantError
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id

_EXISTS = object()  # sentinel: insertion found a duplicate


class _Node:
    """One B+Tree node; ``children is None`` marks a leaf."""

    __slots__ = ("keys", "children", "values", "next_leaf", "region")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[float] = []
        self.children: list["_Node"] | None = None if leaf else []
        self.values: list | None = [] if leaf else None
        self.next_leaf: "_Node | None" = None
        self.region = region_id()

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree(BaseIndex):
    """B+Tree with bulk loading, insertion and rebalancing deletion.

    Args:
        order: Maximum fanout (children per internal node, pairs per
            leaf).  Must be at least 4.
    """

    name = "B+Tree"
    supports_insert = True
    supports_delete = True

    def __init__(self, order: int = 32, move_counter: list | None = None) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._min_keys = order // 2
        self._root = _Node(leaf=True)
        self._count = 0
        self.name = f"B+Tree(Omega={order})"
        # Pairs moved by shifts/splits/merges; a shared list so a
        # composite structure (MassTree) can aggregate across trees.
        self._moves = move_counter if move_counter is not None else [0]

    @property
    def moved_pairs(self) -> int:
        """Total pairs shifted or copied by structural maintenance."""
        return self._moves[0]

    # ------------------------------------------------------------------
    # Bulk loading (bottom-up, full leaves, stx-style)
    # ------------------------------------------------------------------

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._count = len(keys)
        if len(keys) == 0:
            self._root = _Node(leaf=True)
            return
        leaves = []
        for start in range(0, len(keys), self.order):
            leaf = _Node(leaf=True)
            leaf.keys = [float(k) for k in keys[start:start + self.order]]
            leaf.values = values[start:start + self.order]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        # Avoid an undersized final leaf (it would violate the fill
        # invariant deletions rely on): rebalance with its left sibling.
        if len(leaves) > 1 and len(leaves[-1].keys) < self._min_keys:
            left, last = leaves[-2], leaves[-1]
            merged_keys = left.keys + last.keys
            merged_vals = left.values + last.values
            half = len(merged_keys) // 2
            left.keys, last.keys = merged_keys[:half], merged_keys[half:]
            left.values, last.values = merged_vals[:half], merged_vals[half:]
        level: list[_Node] = leaves
        while len(level) > 1:
            parents = []
            for start in range(0, len(level), self.order):
                group = level[start:start + self.order]
                parent = _Node(leaf=False)
                parent.children = group
                parent.keys = [self._subtree_min(c) for c in group[1:]]
                parents.append(parent)
            if (
                len(parents) > 1
                and len(parents[-1].children) < max(2, self._min_keys)
            ):
                # Undersized last parent: redistribute children evenly
                # with its left sibling so both satisfy the fill bound.
                prev, lonely = parents[-2], parents[-1]
                combined = prev.children + lonely.children
                half = len(combined) // 2
                prev.children = combined[:half]
                lonely.children = combined[half:]
                prev.keys = [
                    self._subtree_min(c) for c in prev.children[1:]
                ]
                lonely.keys = [
                    self._subtree_min(c) for c in lonely.children[1:]
                ]
            level = parents
        self._root = level[0]

    @staticmethod
    def _subtree_min(node: _Node) -> float:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        node = self._root
        mem = tracer.mem
        compute = tracer.compute
        while not node.is_leaf:
            mem(node.region, 0)
            idx = self._search_node(node.keys, key, tracer, node.region)
            node = node.children[idx]
        mem(node.region, 0)
        idx = bisect_left(node.keys, key)
        # Charge the in-leaf binary search probes.
        lo, hi = 0, len(node.keys)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            mem(node.region, 8 + mid * 8)
            compute(_C.exp_search_step)
            if node.keys[mid] <= key:
                lo = mid
            else:
                hi = mid
        if idx < len(node.keys) and node.keys[idx] == key:
            mem(node.region, 8 + idx * 16)
            return node.values[idx]
        return None

    @staticmethod
    def _search_node(
        keys: list[float], key: float, tracer: Tracer, region: int
    ) -> int:
        """Traced ``bisect_right`` over one node's separator keys."""
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            tracer.mem(region, 8 + mid * 8)
            tracer.compute(_C.exp_search_step)
            if key < keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def floor_item(
        self, key: float, tracer: Tracer = NULL_TRACER
    ) -> tuple[float, object] | None:
        """The pair with the largest key <= ``key`` (None if none).

        Used by structures that index region boundaries in a B+Tree
        (e.g. FITing-Tree segments): the floor entry owns the region
        containing ``key``.
        """
        node = self._root
        left_neighbor: _Node | None = None
        while not node.is_leaf:
            tracer.mem(node.region, 0)
            idx = self._search_node(node.keys, key, tracer, node.region)
            if idx > 0:
                left_neighbor = node.children[idx - 1]
            node = node.children[idx]
        tracer.mem(node.region, 0)
        idx = bisect_right(node.keys, key) - 1
        if idx >= 0:
            tracer.mem(node.region, 8 + idx * 16)
            return node.keys[idx], node.values[idx]
        # Everything in this leaf exceeds key: the floor (if any) is the
        # maximum of the nearest subtree left of the descent path.
        if left_neighbor is None:
            return None
        node = left_neighbor
        while not node.is_leaf:
            tracer.mem(node.region, 0)
            node = node.children[-1]
        if not node.keys:
            return None
        tracer.mem(node.region, 8 + (len(node.keys) - 1) * 16)
        return node.keys[-1], node.values[-1]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        result = self._insert(self._root, key, value)
        if result is _EXISTS:
            return False
        if result is not None:
            sep, right = result
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._count += 1
        return True

    def _insert(self, node: _Node, key: float, value: object):
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return _EXISTS
            # A C++ array leaf shifts the tail right by one slot.
            self._moves[0] += len(node.keys) - idx
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect_right(node.keys, key)
        result = self._insert(node.children[idx], key, value)
        if result is _EXISTS or result is None:
            return result
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        self._moves[0] += len(node.keys) // 2
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Deletion (with borrow/merge rebalancing)
    # ------------------------------------------------------------------

    def delete(self, key: float) -> bool:
        key = float(key)
        found = self._delete(self._root, key)
        if not found:
            return False
        root = self._root
        if not root.is_leaf and len(root.children) == 1:
            self._root = root.children[0]
        self._count -= 1
        return True

    def _delete(self, node: _Node, key: float) -> bool:
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                self._moves[0] += len(node.keys) - idx - 1
                node.keys.pop(idx)
                node.values.pop(idx)
                return True
            return False
        idx = bisect_right(node.keys, key)
        found = self._delete(node.children[idx], key)
        if found and self._underflow(node.children[idx]):
            self._fix_child(node, idx)
        return found

    def _underflow(self, node: _Node) -> bool:
        if node.is_leaf:
            return len(node.keys) < self._min_keys
        return len(node.children) < self._min_keys

    def _fix_child(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1]
            if idx + 1 < len(parent.children)
            else None
        )
        if left is not None and not self._is_minimal(left):
            self._borrow_from_left(parent, idx, left, child)
        elif right is not None and not self._is_minimal(right):
            self._borrow_from_right(parent, idx, child, right)
        elif left is not None:
            self._merge(parent, idx - 1, left, child)
        else:
            self._merge(parent, idx, child, right)

    def _is_minimal(self, node: _Node) -> bool:
        if node.is_leaf:
            return len(node.keys) <= self._min_keys
        return len(node.children) <= self._min_keys

    def _borrow_from_left(
        self, parent: _Node, idx: int, left: _Node, child: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Node, idx: int, child: _Node, right: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(
        self, parent: _Node, left_idx: int, left: _Node, right: _Node
    ) -> None:
        """Merge ``right`` into ``left``; both are children of parent."""
        if left.is_leaf:
            self._moves[0] += len(right.keys)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # ------------------------------------------------------------------
    # Ranges and introspection
    # ------------------------------------------------------------------

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect_right(node.keys, lo)]
        out: list[Pair] = []
        while node is not None:
            for i, k in enumerate(node.keys):
                if k >= hi:
                    return out
                if k >= lo:
                    out.append((k, node.values[i]))
            node = node.next_leaf
        return out

    def memory_bytes(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += 24 + 16 * len(node.keys)
            else:
                total += 16 + 8 * len(node.keys) + 8 * len(node.children)
                stack.extend(node.children)
        return total

    def __len__(self) -> int:
        return self._count

    def height(self) -> int:
        """Number of levels, leaves included."""
        h, node = 1, self._root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h

    def validate(self) -> None:
        """Check ordering and fill invariants (test helper)."""
        pairs = self.range_query(-np.inf, np.inf)
        if len(pairs) != self._count:
            raise InvariantError(
                f"walked {len(pairs)} pairs, tracked {self._count}"
            )
        keys = [k for k, _ in pairs]
        if keys != sorted(keys):
            raise InvariantError("range scan out of key order")
        self._validate_node(self._root, is_root=True)

    def _validate_node(self, node: _Node, is_root: bool) -> None:
        if node.is_leaf:
            if not is_root and len(node.keys) < self._min_keys:
                raise InvariantError("underfull leaf")
            if len(node.keys) > self.order:
                raise InvariantError("overfull leaf")
            return
        if len(node.children) != len(node.keys) + 1:
            raise InvariantError("children/separator count mismatch")
        if len(node.children) > self.order:
            raise InvariantError("overfull internal node")
        if not is_root and len(node.children) < self._min_keys:
            raise InvariantError("underfull internal node")
        # Separators are routing values: they need not equal a live key
        # (deletions leave them stale) but must still partition the
        # subtrees: max(left) < sep <= min(right).
        for i, sep in enumerate(node.keys):
            if self._subtree_min(node.children[i + 1]) < sep:
                raise InvariantError("separator exceeds right subtree minimum")
            if self._subtree_max(node.children[i]) >= sep:
                raise InvariantError("separator not above left subtree maximum")
        for child in node.children:
            self._validate_node(child, is_root=False)

    @staticmethod
    def _subtree_max(node: _Node) -> float:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else -np.inf
