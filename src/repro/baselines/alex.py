"""ALEX (Ding et al., SIGMOD'20): adaptive learned index, simplified.

The structural traits the paper contrasts DILI against are kept:

* internal nodes split their key range into a **power-of-2** number of
  equal parts (the rigidity Section 4.4 criticizes),
* leaves are **gapped arrays**: pairs sit near their model-predicted
  slot with gaps in between, so inserts usually shift nothing and
  lookups need an exponential search around the prediction,
* a node-size budget ``max_node_bytes`` (the paper's Gamma parameter,
  swept in Table 4) caps leaves; overfull leaves expand until the budget
  and then split downward into a two-way internal node,
* deletes are lazy: the slot is vacated but the array keeps its key as a
  search fence (Section 7.4's observation).

Gap slots duplicate the key of the nearest real element to their right
(+inf after the last), keeping the whole array sorted so exponential
search stays valid -- the same trick real ALEX uses.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.core.linear_model import LinearModel
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id

_MAX_FANOUT_PER_NODE = 256
_MAX_BUILD_DEPTH = 48


class _Internal:
    """Equal-width internal node with power-of-2 fanout."""

    __slots__ = ("lb", "ub", "children", "region")

    def __init__(self, lb: float, ub: float, fanout: int) -> None:
        self.lb = lb
        self.ub = ub
        self.children: list[object] = [None] * fanout
        self.region = region_id()

    def child_index(self, key: float) -> int:
        fanout = len(self.children)
        pos = int((key - self.lb) * fanout / (self.ub - self.lb))
        if pos < 0:
            return 0
        if pos >= fanout:
            return fanout - 1
        return pos


class _Leaf:
    """Gapped-array leaf."""

    __slots__ = (
        "lb",
        "ub",
        "keys",
        "values",
        "occupied",
        "num",
        "slope",
        "intercept",
        "region",
        "shifted",
    )

    def __init__(
        self,
        lb: float,
        ub: float,
        keys: np.ndarray,
        values: list,
        capacity: int,
    ) -> None:
        self.lb = lb
        self.ub = ub
        self.num = len(keys)
        self.region = region_id()
        self.shifted = 0
        model = LinearModel.fit(keys)
        if self.num:
            model = model.scaled(capacity / self.num)
        self.slope = model.slope
        self.intercept = model.intercept
        self.keys = np.full(capacity, np.inf)
        self.values: list = [None] * capacity
        self.occupied = np.zeros(capacity, dtype=bool)
        # Model-based placement: each pair lands at its predicted slot,
        # pushed right just enough to preserve order.
        last = -1
        positions = []
        for i in range(self.num):
            pos = int(self.intercept + self.slope * float(keys[i]))
            pos = max(pos, last + 1)
            pos = min(pos, capacity - 1)
            if pos <= last:  # ran out of room at the tail
                positions = [
                    int(i * capacity / self.num) for i in range(self.num)
                ]
                break
            positions.append(pos)
            last = pos
        for i, pos in enumerate(positions):
            self.keys[pos] = float(keys[i])
            self.values[pos] = values[i]
            self.occupied[pos] = True
        self._refill_gaps(0, capacity)

    @property
    def capacity(self) -> int:
        return len(self.keys)

    def _refill_gaps(self, lo: int, hi: int) -> None:
        """Rewrite gap fence keys in [lo, hi): each gap takes the key of
        the nearest real element to its right (+inf at the tail)."""
        next_key = np.inf
        if hi < self.capacity:
            next_key = self.keys[hi]
        for i in range(hi - 1, lo - 1, -1):
            if self.occupied[i]:
                next_key = self.keys[i]
            else:
                self.keys[i] = next_key

    def predict(self, key: float) -> int:
        pos = int(self.intercept + self.slope * key)
        if pos < 0:
            return 0
        if pos >= self.capacity:
            return self.capacity - 1
        return pos

    def lower_slot(self, key: float, tracer: Tracer) -> int:
        """First slot with fence key >= ``key`` (exp search, traced)."""
        from repro.core.search_util import exp_search_lub

        return exp_search_lub(
            self.keys, key, self.predict(key), tracer, self.region
        )

    def find(self, key: float, tracer: Tracer) -> int:
        """Slot of the occupied pair with ``key``; -1 when absent."""
        pos = self.lower_slot(key, tracer)
        n = self.capacity
        while pos < n and self.keys[pos] == key:
            if self.occupied[pos]:
                return pos
            pos += 1
            tracer.mem(self.region, pos * 8)
        return -1

    def iter_pairs(self):
        for i in range(self.capacity):
            if self.occupied[i]:
                yield (float(self.keys[i]), self.values[i])

    def insert(self, key: float, value: object, tracer: Tracer) -> bool:
        """Insert into the gapped array; assumes key not present."""
        g = self.lower_slot(key, tracer)
        # Everything in [g, p) is a writable gap whose fence key belongs
        # to the first occupied slot p of the >= run.
        p = g
        while p < self.capacity and not self.occupied[p]:
            p += 1
        if g < p:
            # A gap exists right where the key belongs: use the slot
            # closest to the model prediction inside [g, p-1].
            t = min(max(self.predict(key), g), p - 1)
            self.keys[t] = key
            self.values[t] = value
            self.occupied[t] = True
            self._refill_gaps(g, t)
            self.num += 1
            return True
        # No gap at the insertion point: shift toward the nearest gap.
        right = p
        while right < self.capacity and self.occupied[right]:
            right += 1
        if right < self.capacity:
            # Shift [p, right) one slot right, freeing p.
            self.shifted = right - p
            for i in range(right, p, -1):
                self.keys[i] = self.keys[i - 1]
                self.values[i] = self.values[i - 1]
                self.occupied[i] = self.occupied[i - 1]
            tracer.compute(_C.linear_search_step * (right - p))
            self.keys[p] = key
            self.values[p] = value
            self.occupied[p] = True
            self.num += 1
            return True
        left = p - 1
        while left >= 0 and self.occupied[left]:
            left -= 1
        if left < 0:
            return False  # completely full; caller must expand/split
        self.shifted = p - 1 - left
        for i in range(left, p - 1):
            self.keys[i] = self.keys[i + 1]
            self.values[i] = self.values[i + 1]
            self.occupied[i] = self.occupied[i + 1]
        tracer.compute(_C.linear_search_step * (p - 1 - left))
        self.keys[p - 1] = key
        self.values[p - 1] = value
        self.occupied[p - 1] = True
        self.num += 1
        return True

    def delete(self, key: float, tracer: Tracer) -> bool:
        """Lazy delete: vacate the slot, keep the key as a fence."""
        pos = self.find(key, tracer)
        if pos < 0:
            return False
        self.occupied[pos] = False
        self.values[pos] = None
        self.num -= 1
        return True


class AlexIndex(BaseIndex):
    """Simplified ALEX with the paper-relevant structural behaviour.

    Args:
        max_node_bytes: The Gamma parameter -- byte budget per leaf
            (16 bytes per slot).  Table 4 sweeps 16 KB .. 64 MB.
        density: Target fill factor after (re)building a leaf.
        max_density: Fill factor that triggers expansion or splitting.
    """

    name = "ALEX"
    supports_insert = True
    supports_delete = True

    def __init__(
        self,
        max_node_bytes: int = 1 << 20,
        density: float = 0.7,
        max_density: float = 0.85,
    ) -> None:
        if max_node_bytes < 1024:
            raise ValueError("max_node_bytes must be >= 1024")
        if not 0.1 < density < max_density <= 0.95:
            raise ValueError("need 0.1 < density < max_density <= 0.95")
        self.max_node_bytes = max_node_bytes
        self.density = density
        self.max_density = max_density
        self.name = f"ALEX(G={max_node_bytes // 1024}KB)"
        self._root: object | None = None
        self._count = 0
        self.moved_pairs = 0
        """Pairs shifted or copied by gap shifts, expansions, splits."""

    @property
    def _max_slots(self) -> int:
        return max(self.max_node_bytes // 16, 64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._count = len(keys)
        if len(keys) == 0:
            self._root = None
            return
        lb = float(keys[0])
        ub = float(keys[-1]) + max(1.0, abs(float(keys[-1])) * 1e-12)
        self._root = self._build(keys, values, lb, ub, 0)

    def _build(self, keys, values, lb, ub, depth):
        n = len(keys)
        needed_slots = int(math.ceil(max(n, 1) / self.density))
        fits_budget = needed_slots <= self._max_slots
        if depth >= _MAX_BUILD_DEPTH or (
            fits_budget and (n <= 512 or self._rank_rmse(keys) <= 8.0)
        ):
            return self._make_leaf(keys, values, lb, ub)
        if fits_budget:
            # Quality-driven split (ALEX's cost model: an inaccurate leaf
            # pays exponential-search misses, an internal level pays one
            # pointer chase) -- a moderate fanout, recursion refines.
            fanout = 16
        else:
            # Size-driven split: children must fit the node budget.
            fanout = 2
            while (
                fanout < _MAX_FANOUT_PER_NODE
                and needed_slots / fanout > self._max_slots
            ):
                fanout *= 2
        node = _Internal(lb, ub, fanout)
        width = (ub - lb) / fanout
        bounds = [lb + i * width for i in range(fanout)] + [ub]
        splits = np.searchsorted(keys, bounds[1:-1], side="left")
        starts = [0] + [int(s) for s in splits]
        ends = [int(s) for s in splits] + [n]
        for i in range(fanout):
            node.children[i] = self._build(
                keys[starts[i]:ends[i]],
                values[starts[i]:ends[i]],
                bounds[i],
                bounds[i + 1],
                depth + 1,
            )
        return node

    @staticmethod
    def _rank_rmse(keys: np.ndarray) -> float:
        """RMSE of a least-squares rank fit (leaf-quality estimate)."""
        n = len(keys)
        if n < 2:
            return 0.0
        x = np.asarray(keys, dtype=np.float64)
        ranks = np.arange(n, dtype=np.float64)
        mx, my = x.mean(), ranks.mean()
        dx = x - mx
        sxx = float(dx @ dx)
        if sxx <= 0.0:
            return 0.0
        slope = float(dx @ (ranks - my)) / sxx
        err = ranks - (my + slope * dx)
        return float(np.sqrt(np.mean(err * err)))

    def _make_leaf(self, keys, values, lb, ub) -> _Leaf:
        n = len(keys)
        capacity = max(int(math.ceil(max(n, 1) / self.density)), 64)
        return _Leaf(lb, ub, np.asarray(keys, dtype=np.float64),
                     list(values), capacity)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        node = self._root
        if node is None:
            return None
        while type(node) is _Internal:
            tracer.mem(node.region)
            tracer.compute(_C.linear_model)
            idx = node.child_index(key)
            tracer.mem(node.region, 64 + idx * 8)
            node = node.children[idx]
        tracer.mem(node.region)
        tracer.compute(_C.linear_model)
        pos = node.find(key, tracer)
        if pos < 0:
            return None
        return node.values[pos]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _descend(self, key: float):
        """Return (leaf, parent, child_idx) for ``key``."""
        parent, idx = None, -1
        node = self._root
        while type(node) is _Internal:
            parent = node
            idx = node.child_index(key)
            node = node.children[idx]
        return node, parent, idx

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        if self._root is None:
            self._root = self._make_leaf(
                np.array([key]), [value], key, key + 1.0
            )
            self._count = 1
            return True
        leaf, parent, idx = self._descend(key)
        if leaf.find(key, NULL_TRACER) >= 0:
            return False
        leaf.shifted = 0
        ok = leaf.insert(key, value, NULL_TRACER)
        self.moved_pairs += leaf.shifted
        if not ok or leaf.num / leaf.capacity > self.max_density:
            self.moved_pairs += leaf.num
            replacement = self._grow(leaf, key, value)
            if parent is None:
                self._root = replacement
            else:
                parent.children[idx] = replacement
        self._count += 1
        return True

    def _grow(self, leaf: _Leaf, key: float, value: object):
        """Expand an overfull leaf, or split it downward at the budget.

        ``key``/``value`` are included if the preceding ``insert`` failed
        for want of space (the pair is absent from the leaf then).
        """
        pairs = list(leaf.iter_pairs())
        if not any(k == key for k, _ in pairs):
            pairs.append((key, value))
            pairs.sort()
        keys = np.array([p[0] for p in pairs])
        values = [p[1] for p in pairs]
        needed = int(math.ceil(len(pairs) / self.density))
        if needed <= self._max_slots:
            return _Leaf(leaf.lb, leaf.ub, keys, values, needed)
        # Split downward: a 2-way internal node over the halved range.
        node = _Internal(leaf.lb, leaf.ub, 2)
        mid = (leaf.lb + leaf.ub) / 2.0
        cut = int(np.searchsorted(keys, mid, side="left"))
        node.children[0] = self._build(
            keys[:cut], values[:cut], leaf.lb, mid, 0
        )
        node.children[1] = self._build(
            keys[cut:], values[cut:], mid, leaf.ub, 0
        )
        return node

    def delete(self, key: float) -> bool:
        key = float(key)
        if self._root is None:
            return False
        leaf, _, _ = self._descend(key)
        if leaf.delete(key, NULL_TRACER):
            self._count -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # Ranges and introspection
    # ------------------------------------------------------------------

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        out: list[Pair] = []
        if self._root is not None:
            self._collect(self._root, lo, hi, out)
        return out

    def _collect(self, node, lo: float, hi: float, out: list[Pair]) -> bool:
        """Append pairs in [lo, hi); returns False once past ``hi``."""
        if type(node) is _Internal:
            start = node.child_index(lo) if lo > node.lb else 0
            for i in range(start, len(node.children)):
                if not self._collect(node.children[i], lo, hi, out):
                    return False
            return True
        start = int(np.searchsorted(node.keys, lo, side="left"))
        for i in range(start, node.capacity):
            if not node.occupied[i]:
                continue
            k = float(node.keys[i])
            if k >= hi:
                return False
            if k >= lo:
                out.append((k, node.values[i]))
        return True

    def memory_bytes(self) -> int:
        total = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if type(node) is _Internal:
                total += 32 + 8 * len(node.children)
                stack.extend(node.children)
            else:
                # key + value slot (16 B) plus the occupancy bitmap.
                total += 48 + 16 * node.capacity + node.capacity // 8
        return total

    def __len__(self) -> int:
        return self._count

    def height(self) -> int:
        """Levels from root to the deepest leaf (diagnostic)."""

        def depth(node) -> int:
            if type(node) is _Internal:
                return 1 + max(depth(c) for c in node.children)
            return 1

        return depth(self._root) if self._root is not None else 0
