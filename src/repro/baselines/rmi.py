"""RMI: the two-stage Recursive Model Index (Kraska et al., SIGMOD'18).

A root model (linear or cubic, per the paper's "linear stages and cubic
stages") routes each key to one of ``branching`` second-stage linear
models; the chosen model predicts a position in the sorted key array and
a per-model error bound limits the correcting binary search.  The layout
is fixed at build time and the structure supports no updates -- exactly
why the paper excludes RMI from its insertion workloads.

The paper's RMI (S) and RMI (L) configurations differ only in the
second-stage count; pass ``branching`` accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.check.errors import InvariantError
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id


class RMIIndex(BaseIndex):
    """Two-stage RMI over a sorted array.

    Args:
        branching: Number of second-stage models.
        root_kind: "linear", "cubic", "loglinear" or "auto".  The SOSD
            RMI tuner picks per-dataset root models; "loglinear" fits
            ranks against ``log2(key + 1)`` so heavy tails (FB, Books)
            cannot collapse the body into a handful of buckets, and
            "auto" builds with every root kind and keeps the one whose
            mean second-stage error window is smallest -- the tuner's
            selection criterion.
    """

    name = "RMI"

    def __init__(self, branching: int = 4096, root_kind: str = "cubic") -> None:
        if branching < 1:
            raise ValueError("branching must be positive")
        if root_kind not in ("linear", "cubic", "loglinear", "auto"):
            raise ValueError(
                "root_kind must be 'linear', 'cubic', 'loglinear' or "
                "'auto'"
            )
        self.branching = branching
        self.root_kind = root_kind
        self.name = f"RMI({root_kind},{branching})"
        self._keys = np.array([], dtype=np.float64)
        self._values: list = []
        self._root_coeffs = np.zeros(4)
        self._key_offset = 0.0
        self._key_scale = 1.0
        self._slopes = np.array([])
        self._intercepts = np.array([])
        self._err_lo = np.array([])
        self._err_hi = np.array([])
        self._keys_region = region_id()
        self._stage2_region = region_id()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        if self.root_kind == "auto":
            self._bulk_load_auto(keys, values)
            return
        self._keys = keys
        self._values = values
        n = len(keys)
        if n == 0:
            return
        ranks = np.arange(n, dtype=np.float64)
        # Normalize keys into [0, 1] so the polynomial fit stays
        # conditioned; the loglinear root transforms first.
        self._key_offset = float(keys[0])
        span = float(keys[-1] - keys[0])
        self._key_scale = 1.0 / span if span > 0 else 1.0
        x = self._transform(keys)
        if n == 1:
            self._root_coeffs = np.array([0.0, 0.0])
        else:
            degree = 3 if self.root_kind == "cubic" and n > 4 else 1
            with np.errstate(all="ignore"):
                self._root_coeffs = np.polyfit(x, ranks, degree)
        buckets = self._route(keys)
        m = self.branching
        slopes = np.zeros(m)
        intercepts = np.zeros(m)
        err_lo = np.zeros(m, dtype=np.int64)
        err_hi = np.zeros(m, dtype=np.int64)
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        starts = np.searchsorted(sorted_buckets, np.arange(m), side="left")
        ends = np.searchsorted(sorted_buckets, np.arange(m), side="right")
        last_boundary = 0.0
        for b in range(m):
            idx = order[starts[b]:ends[b]]
            if len(idx) == 0:
                # Empty bucket: predict the running boundary rank so that
                # misses routed here search a one-element window.
                slopes[b] = 0.0
                intercepts[b] = last_boundary
                continue
            bk = keys[idx]
            br = ranks[idx]
            if len(idx) == 1 or bk[-1] == bk[0]:
                slopes[b] = 0.0
                intercepts[b] = br[0]
            else:
                mx, my = bk.mean(), br.mean()
                dx = bk - mx
                sxx = float(dx @ dx)
                slope = float(dx @ (br - my)) / sxx if sxx > 0 else 0.0
                slopes[b] = slope
                intercepts[b] = my - slope * mx
            pred = intercepts[b] + slopes[b] * bk
            err = br - pred
            err_lo[b] = int(np.floor(err.min()))
            err_hi[b] = int(np.ceil(err.max()))
            last_boundary = float(br[-1])
        self._slopes = slopes
        self._intercepts = intercepts
        self._err_lo = err_lo
        self._err_hi = err_hi

    def _bulk_load_auto(self, keys, values) -> None:
        """Build with every root kind; adopt the tightest-window one."""
        best: RMIIndex | None = None
        best_window = None
        for kind in ("linear", "cubic", "loglinear"):
            candidate = RMIIndex(self.branching, kind)
            candidate.bulk_load(keys, values)
            window = (
                float(np.mean(candidate._err_hi - candidate._err_lo))
                if len(candidate._err_hi)
                else 0.0
            )
            if best_window is None or window < best_window:
                best, best_window = candidate, window
        if best is None:
            raise InvariantError("auto root selection tried no candidate")
        self.root_kind = best.root_kind
        self.name = f"RMI(auto->{best.root_kind},{self.branching})"
        for attr in (
            "_keys", "_values", "_root_coeffs", "_key_offset",
            "_key_scale", "_slopes", "_intercepts", "_err_lo", "_err_hi",
        ):
            setattr(self, attr, getattr(best, attr))

    def _transform(self, keys: np.ndarray | float):
        """Root-model input transform (normalization or log)."""
        if self.root_kind == "loglinear":
            return np.log2(np.maximum(keys, 0.0) + 1.0)
        return (keys - self._key_offset) * self._key_scale

    def _route(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized root-model bucket assignment."""
        x = self._transform(keys)
        pred = np.polyval(self._root_coeffs, x)
        n = len(self._keys)
        buckets = np.floor(pred * self.branching / max(n, 1)).astype(np.int64)
        return np.clip(buckets, 0, self.branching - 1)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        n = len(self._keys)
        if n == 0:
            return None
        tracer.phase("step1")
        x = self._transform(key)
        # Root model evaluation: one multiply-add per polynomial degree
        # (a log transform costs about one more).
        tracer.compute(_C.linear_model * (len(self._root_coeffs) - 1))
        if self.root_kind == "loglinear":
            tracer.compute(_C.linear_model)
        pred = float(np.polyval(self._root_coeffs, x))
        bucket = int(pred * self.branching / n)
        if bucket < 0:
            bucket = 0
        elif bucket >= self.branching:
            bucket = self.branching - 1
        # Fetch the second-stage model (4 doubles = half a cache line).
        tracer.mem(self._stage2_region, bucket * 32)
        tracer.compute(_C.linear_model)
        pos = self._intercepts[bucket] + self._slopes[bucket] * key
        lo = int(pos) + int(self._err_lo[bucket])
        hi = int(pos) + int(self._err_hi[bucket]) + 1
        if lo < 0:
            lo = 0
        if hi > n:
            hi = n
        tracer.phase("step2")
        keys = self._keys
        while hi - lo > 1:
            mid = (lo + hi) // 2
            tracer.mem(self._keys_region, mid * 8)
            tracer.compute(_C.exp_search_step)
            if keys[mid] <= key:
                lo = mid
            else:
                hi = mid
        tracer.phase("done")
        if lo < n and keys[lo] == key:
            tracer.mem(self._keys_region, n * 8 + lo * 8)
            return self._values[lo]
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        # Root polynomial + per-model (slope, intercept, two error ints).
        return 32 + self.branching * 32

    def __len__(self) -> int:
        return len(self._keys)

    def max_error_window(self) -> int:
        """Widest per-model search window (diagnostic for tests)."""
        if len(self._err_lo) == 0:
            return 0
        return int(np.max(self._err_hi - self._err_lo))
