"""MassTree (Mao et al., EuroSys'12): a trie of B+Trees.

MassTree concatenates B+Trees layer-wise over fixed-width key slices;
each layer's tree maps its slice value either to the next layer's tree
or, at the last layer, to the payload.  The multi-layer descent is what
makes it the slowest point-lookup structure in the paper's Table 4
(~1.2-1.5 us): every layer adds a full B-tree traversal of cache misses.

Real MassTree slices by 8 bytes (a single layer for uint64 keys, plus
variable-length suffixes); to preserve the *trie-of-trees* behaviour --
and its measured position as the slowest point-lookup structure -- at
this reproduction's 52-bit integer key domain, the default slices by
7 bits into a fixed eight-layer trie.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.baselines.btree import BPlusTree
from repro.simulate.tracer import NULL_TRACER, Tracer


class MassTree(BaseIndex):
    """Fixed-depth trie of B+Trees over key slices.

    Args:
        slice_bits: Bits per trie layer.
        levels: Number of layers; ``slice_bits * levels`` must cover the
            52-bit key domain.
        order: Node size of the per-layer B+Trees (Masstree uses 15-ary
            nodes; 16 keeps the same cache profile).
    """

    name = "MassTree"
    supports_insert = True
    supports_delete = True

    def __init__(
        self, slice_bits: int = 7, levels: int = 8, order: int = 16
    ) -> None:
        if slice_bits * levels < 52:
            raise ValueError("slice_bits * levels must cover 52-bit keys")
        self.slice_bits = slice_bits
        self.levels = levels
        self.order = order
        self._moves = [0]
        self._root = BPlusTree(order, move_counter=self._moves)
        self._count = 0

    @property
    def moved_pairs(self) -> int:
        """Pairs shifted across all layer trees (shared counter)."""
        return self._moves[0]

    def _slices(self, key: float) -> list[int]:
        """Big-endian fixed-width slices of the integer key."""
        k = int(key)
        mask = (1 << self.slice_bits) - 1
        return [
            (k >> (self.slice_bits * (self.levels - 1 - i))) & mask
            for i in range(self.levels)
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._count = len(keys)
        if len(keys) == 0:
            self._root = BPlusTree(self.order, move_counter=self._moves)
            return
        ints = keys.astype(np.int64)
        self._moves[0] = 0
        self._root = self._build_layer(ints, values, 0)

    def _build_layer(
        self, ints: np.ndarray, values: list, level: int
    ) -> BPlusTree:
        """Group keys by this layer's slice and recurse per group."""
        shift = self.slice_bits * (self.levels - 1 - level)
        mask = (1 << self.slice_bits) - 1
        slices = (ints >> shift) & mask
        uniq, starts = np.unique(slices, return_index=True)
        ends = np.append(starts[1:], len(ints))
        tree = BPlusTree(self.order, move_counter=self._moves)
        layer_values: list[object] = []
        for i in range(len(uniq)):
            lo, hi = int(starts[i]), int(ends[i])
            if level == self.levels - 1:
                # A slice at the last layer is unique per key.
                layer_values.append(values[lo])
            else:
                layer_values.append(
                    self._build_layer(ints[lo:hi], values[lo:hi], level + 1)
                )
        tree.bulk_load(uniq.astype(np.float64), layer_values)
        return tree

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        if key != int(key):
            # The trie slices integer bits; fractional keys cannot be
            # stored, so they cannot be found (and must not alias the
            # integer sharing their bit prefix).
            return None
        node: object = self._root
        for s in self._slices(key):
            if not isinstance(node, BPlusTree):
                return None
            node = node.get(float(s), tracer)
            if node is None:
                return None
        return node

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        if key != int(key):
            raise ValueError("MassTree stores integer-valued keys only")
        slices = self._slices(key)
        tree = self._root
        for depth, s in enumerate(slices[:-1]):
            nxt = tree.get(float(s))
            if nxt is None:
                nxt = BPlusTree(self.order, move_counter=self._moves)
                tree.insert(float(s), nxt)
            tree = nxt
        if not tree.insert(float(slices[-1]), value):
            return False
        self._count += 1
        return True

    def delete(self, key: float) -> bool:
        key = float(key)
        if key != int(key):
            return False
        slices = self._slices(key)
        path: list[tuple[BPlusTree, int]] = []
        tree = self._root
        for s in slices[:-1]:
            path.append((tree, s))
            nxt = tree.get(float(s))
            if nxt is None:
                return False
            tree = nxt
        if not tree.delete(float(slices[-1])):
            return False
        self._count -= 1
        # Prune now-empty sub-trees so memory does not leak.
        while path and len(tree) == 0:
            parent, s = path.pop()
            parent.delete(float(s))
            tree = parent
        return True

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        out: list[Pair] = []
        self._collect(self._root, 0, 0, lo, hi, out)
        return out

    def _collect(
        self,
        tree: BPlusTree,
        prefix: int,
        level: int,
        lo: float,
        hi: float,
        out: list[Pair],
    ) -> None:
        shift = self.slice_bits * (self.levels - 1 - level)
        for s, child in tree.range_query(-np.inf, np.inf):
            base = prefix | (int(s) << shift)
            if level == self.levels - 1:
                key = float(base)
                if lo <= key < hi:
                    out.append((key, child))
            else:
                span = 1 << shift
                if base + span <= lo or base >= hi:
                    continue
                self._collect(child, base, level + 1, lo, hi, out)

    def memory_bytes(self) -> int:
        total = 0
        stack: list[object] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, BPlusTree):
                total += node.memory_bytes()
                for _, child in node.range_query(-np.inf, np.inf):
                    if isinstance(child, BPlusTree):
                        stack.append(child)
        return total

    def __len__(self) -> int:
        return self._count
