"""PGM-index (Ferragina & Vinciguerra, VLDB'20), static and dynamic.

:class:`PGMIndex` is the static structure: an epsilon-bounded piecewise
linear approximation (PLA) of the key->rank function, built level over
level until a single root segment remains.  Every level guarantees
``|predicted - true| <= epsilon``, so each descent step searches a
``2*epsilon + 1`` window.

:class:`DynamicPGM` adds updates with the logarithmic method the real
PGM uses (and the paper criticizes): a sequence of static PGMs of
doubling sizes; inserts rebuild the smallest run, deletes insert
tombstones, and every query probes all runs -- which is why PGM trails
badly on the paper's write-heavy workloads (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseIndex, Pair, UnsupportedOperation
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id

_TOMBSTONE = object()
"""Marks a deleted key inside a DynamicPGM run."""


def build_pla(
    keys: np.ndarray, epsilon: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Greedy epsilon-bounded PLA over (keys[i], i).

    Returns parallel arrays (first_key, slope, intercept, start_rank),
    one entry per segment, such that segment ``s`` covers exactly the
    ranks ``[start_rank[s], start_rank[s+1])`` and for every covered i,
    ``|intercept_s + slope_s * keys[i] - i| <= epsilon``.
    """
    n = len(keys)
    if n == 0:
        empty = np.array([])
        return (empty, empty, empty, np.array([], dtype=np.int64))
    firsts: list[float] = []
    slopes: list[float] = []
    intercepts: list[float] = []
    starts: list[int] = []

    def emit(base_x: float, base_y: float, lo: float, hi: float) -> None:
        if hi == np.inf or lo == -np.inf:
            slope = 0.0
        else:
            slope = (lo + hi) / 2.0
        firsts.append(base_x)
        slopes.append(slope)
        intercepts.append(base_y - slope * base_x)
        starts.append(int(base_y))

    base_x, base_y = float(keys[0]), 0.0
    upper, lower = np.inf, -np.inf
    for i in range(1, n):
        x, y = float(keys[i]), float(i)
        dx = x - base_x
        slope = (y - base_y) / dx
        if slope > upper or slope < lower:
            emit(base_x, base_y, lower, upper)
            base_x, base_y = x, y
            upper, lower = np.inf, -np.inf
        else:
            upper = min(upper, (y + epsilon - base_y) / dx)
            lower = max(lower, (y - epsilon - base_y) / dx)
    emit(base_x, base_y, lower, upper)
    return (
        np.array(firsts),
        np.array(slopes),
        np.array(intercepts),
        np.array(starts, dtype=np.int64),
    )


class PGMIndex(BaseIndex):
    """Static multi-level PGM-index.

    Args:
        epsilon: Error bound of every PLA level (paper-typical: 32-128).
    """

    name = "PGM"

    def __init__(self, epsilon: int = 32) -> None:
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        self.epsilon = epsilon
        self.name = f"PGM(e={epsilon})"
        self._keys = np.array([], dtype=np.float64)
        self._values: list = []
        # Levels from bottom (over the data) to top (single segment).
        # Each level is (first_keys, slopes, intercepts, start_ranks).
        self._levels: list[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self._keys_region = region_id()
        self._level_regions: list[int] = []

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._keys = keys
        self._values = values
        self._levels = []
        self._level_regions = []
        if len(keys) == 0:
            return
        level = build_pla(keys, self.epsilon)
        self._levels.append(level)
        self._level_regions.append(region_id())
        while len(self._levels[-1][0]) > 1:
            firsts = self._levels[-1][0]
            self._levels.append(build_pla(firsts, self.epsilon))
            self._level_regions.append(region_id())

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        n = len(self._keys)
        if n == 0:
            return None
        # Descend the levels from the root; at each level the segment's
        # model prediction, clamped to the segment's covered rank range,
        # bounds a 2*epsilon window at the level below.
        idx = 0
        for depth in range(len(self._levels) - 1, -1, -1):
            firsts, slopes, intercepts, starts = self._levels[depth]
            region = self._level_regions[depth]
            tracer.mem(region, idx * 24)
            tracer.compute(_C.linear_model)
            pred = intercepts[idx] + slopes[idx] * key
            # Ranks covered by this segment at the level below.
            size_below = (
                n if depth == 0 else len(self._levels[depth - 1][0])
            )
            seg_lo = int(starts[idx])
            seg_hi = (
                int(starts[idx + 1]) if idx + 1 < len(starts) else size_below
            )
            pos = int(pred)
            lo = max(pos - self.epsilon - 1, seg_lo)
            hi = min(pos + self.epsilon + 2, seg_hi)
            lo = min(max(lo, seg_lo), seg_hi - 1)
            hi = max(min(hi, seg_hi), lo + 1)
            if depth == 0:
                return self._final_search(key, lo, hi, tracer)
            # Last below-segment whose first key is <= key.
            below_firsts = self._levels[depth - 1][0]
            below_region = self._level_regions[depth - 1]
            while hi - lo > 1:
                mid = (lo + hi) // 2
                tracer.mem(below_region, mid * 24)
                tracer.compute(_C.exp_search_step)
                if below_firsts[mid] <= key:
                    lo = mid
                else:
                    hi = mid
            idx = lo
        return None  # pragma: no cover - loop always returns at depth 0

    def _final_search(
        self, key: float, lo: int, hi: int, tracer: Tracer
    ) -> object | None:
        keys = self._keys
        while hi - lo > 1:
            mid = (lo + hi) // 2
            tracer.mem(self._keys_region, mid * 8)
            tracer.compute(_C.exp_search_step)
            if keys[mid] <= key:
                lo = mid
            else:
                hi = mid
        if lo < len(keys) and keys[lo] == key:
            tracer.mem(self._keys_region, len(keys) * 8 + lo * 8)
            return self._values[lo]
        return None

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        start = int(np.searchsorted(self._keys, lo, side="left"))
        end = int(np.searchsorted(self._keys, hi, side="left"))
        return [
            (float(self._keys[i]), self._values[i]) for i in range(start, end)
        ]

    def memory_bytes(self) -> int:
        # The PGM owns a sorted copy of the pairs (key + pointer, as in
        # the paper's Table 10 where PGM's footprint tracks B+Tree's)
        # plus 24 bytes per segment per level.
        return 16 * len(self._keys) + sum(
            24 * len(level[0]) for level in self._levels
        )

    def __len__(self) -> int:
        return len(self._keys)

    def level_sizes(self) -> list[int]:
        """Segments per level, bottom first (diagnostic)."""
        return [len(level[0]) for level in self._levels]


class DynamicPGM(BaseIndex):
    """PGM with inserts/deletes via the logarithmic method (LSM of runs).

    Run ``i`` holds a static PGM over at most ``base * 2**i`` pairs.  An
    insert merges runs 0..j into the first empty slot j; a delete inserts
    a tombstone that shadows older runs.  Point queries probe runs newest
    to oldest -- the O(log n) trees per query the paper blames for PGM's
    weak write-workload throughput.
    """

    name = "PGM"
    supports_insert = True
    supports_delete = True

    def __init__(self, epsilon: int = 32, base: int = 128) -> None:
        if base < 2:
            raise ValueError("base must be >= 2")
        self.epsilon = epsilon
        self.base = base
        self._runs: list[PGMIndex | None] = []
        self._count = 0
        self.moved_pairs = 0
        """Pairs copied by run merges (the logarithmic method's cost)."""

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._runs = []
        self._count = len(keys)
        if len(keys) == 0:
            return
        run = PGMIndex(self.epsilon)
        run.bulk_load(keys, values)
        slot = self._slot_for(len(keys))
        self._runs = [None] * slot + [run]

    def _slot_for(self, n: int) -> int:
        slot = 0
        cap = self.base
        while cap < n:
            cap *= 2
            slot += 1
        return slot

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        for run in self._runs:  # newest (smallest) first
            if run is None:
                continue
            hit = run.get(key, tracer)
            if hit is not None:
                return None if hit is _TOMBSTONE else hit
        return None

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        existing = self.get(key)
        if existing is not None:
            return False
        self._push(key, value)
        self._count += 1
        return True

    def delete(self, key: float) -> bool:
        key = float(key)
        if self.get(key) is None:
            return False
        self._push(key, _TOMBSTONE)
        self._count -= 1
        return True

    def _push(self, key: float, value: object) -> None:
        """Merge the new pair with runs 0..j into the first free slot."""
        pairs: dict[float, object] = {key: value}
        slot = 0
        for slot, run in enumerate(self._runs):
            if run is None:
                break
            # Older pairs must not overwrite newer ones.
            for k, v in zip(run._keys, run._values):
                pairs.setdefault(float(k), v)
            self._runs[slot] = None
            if len(pairs) <= self.base * (2**slot):
                break
        else:
            slot = len(self._runs)
            self._runs.append(None)
        while len(pairs) > self.base * (2**slot):
            slot += 1
            if slot == len(self._runs):
                self._runs.append(None)
            elif self._runs[slot] is not None:
                run = self._runs[slot]
                for k, v in zip(run._keys, run._values):
                    pairs.setdefault(float(k), v)
                self._runs[slot] = None
        self.moved_pairs += len(pairs)
        merged_keys = np.array(sorted(pairs), dtype=np.float64)
        merged_values = [pairs[float(k)] for k in merged_keys]
        run = PGMIndex(self.epsilon)
        run.bulk_load(merged_keys, merged_values)
        if slot == len(self._runs):
            self._runs.append(run)
        else:
            self._runs[slot] = run

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        merged: dict[float, object] = {}
        for run in reversed([r for r in self._runs if r is not None]):
            for k, v in run.range_query(lo, hi):
                merged[k] = v  # newer runs overwrite older pairs
        return [
            (k, v)
            for k, v in sorted(merged.items())
            if v is not _TOMBSTONE
        ]

    def memory_bytes(self) -> int:
        return sum(r.memory_bytes() for r in self._runs if r is not None)

    def __len__(self) -> int:
        return self._count

    def run_sizes(self) -> list[int]:
        """Pairs per run slot, newest first (diagnostic)."""
        return [0 if r is None else len(r) for r in self._runs]
