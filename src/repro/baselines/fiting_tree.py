"""FITing-Tree (Galakatos et al., SIGMOD'19): buffered PLA segments.

The paper's related-work section positions FITing-Tree as the memory-
frugal learned index: error-bounded linear segments replace B-tree
leaves, a classic B+Tree indexes the segment boundaries, and each
segment absorbs inserts into a small sorted buffer that is merged (and
the segment re-split) when full.  It is not part of the paper's
evaluation; it is included here as an extension baseline because it
shares DILI's substrate (the epsilon-bounded PLA of
:func:`repro.baselines.pgm.build_pla` and this repository's B+Tree) and
rounds out the design space between PGM (static PLA) and ALEX (gapped
arrays).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.baselines.base import BaseIndex, Pair
from repro.baselines.btree import BPlusTree
from repro.baselines.pgm import build_pla
from repro.simulate.latency import DEFAULT_CYCLES as _C
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id


class _Segment:
    """One linear segment with its insert buffer."""

    __slots__ = (
        "keys",
        "values",
        "slope",
        "intercept",
        "base_rank",
        "buf_keys",
        "buf_values",
        "region",
    )

    def __init__(
        self,
        keys: np.ndarray,
        values: list,
        slope: float,
        intercept: float,
        base_rank: int,
    ) -> None:
        self.keys = keys
        self.values = values
        self.slope = slope
        self.intercept = intercept
        self.base_rank = base_rank
        self.buf_keys: list[float] = []
        self.buf_values: list[object] = []
        self.region = region_id()

    @property
    def first_key(self) -> float:
        return float(self.keys[0])

    @property
    def num_pairs(self) -> int:
        return len(self.keys) + len(self.buf_keys)

    def merged_pairs(self) -> tuple[np.ndarray, list]:
        """Segment data and buffer merged into sorted arrays."""
        if not self.buf_keys:
            return self.keys, self.values
        all_keys = np.concatenate(
            [self.keys, np.array(self.buf_keys, dtype=np.float64)]
        )
        all_values = self.values + self.buf_values
        order = np.argsort(all_keys, kind="stable")
        return all_keys[order], [all_values[int(i)] for i in order]


class FITingTree(BaseIndex):
    """Error-bounded segments + boundary B+Tree + insert buffers.

    Args:
        epsilon: PLA error bound; lookups search at most ``2*epsilon``
            positions inside a segment.
        buffer_size: Inserts a segment absorbs before it is merged and
            re-split.
        btree_order: Node size of the boundary B+Tree.
    """

    name = "FITing-Tree"
    supports_insert = True

    def __init__(
        self,
        epsilon: int = 32,
        buffer_size: int = 64,
        btree_order: int = 32,
    ) -> None:
        if epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.epsilon = epsilon
        self.buffer_size = buffer_size
        self.name = f"FITing-Tree(e={epsilon})"
        self._btree = BPlusTree(btree_order)
        self._count = 0
        self.moved_pairs = 0
        """Pairs copied by segment merge/re-split operations."""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(self, keys, values=None) -> None:
        keys, values = self.check_bulk_input(keys, values)
        self._btree = BPlusTree(self._btree.order)
        self._count = len(keys)
        if len(keys) == 0:
            return
        for segment in self._segment(keys, values):
            self._btree.insert(segment.first_key, segment)

    def _segment(self, keys: np.ndarray, values: list) -> list[_Segment]:
        """Split sorted pairs into epsilon-bounded segments."""
        firsts, slopes, intercepts, starts = build_pla(keys, self.epsilon)
        segments = []
        bounds = list(starts) + [len(keys)]
        for i in range(len(firsts)):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            segments.append(
                _Segment(
                    keys[lo:hi],
                    values[lo:hi],
                    float(slopes[i]),
                    float(intercepts[i]),
                    lo,
                )
            )
        return segments

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _locate(self, key: float, tracer: Tracer) -> _Segment | None:
        entry = self._btree.floor_item(key, tracer)
        if entry is None:
            # Below the first segment: only that segment's buffer could
            # have absorbed such a key.
            first = self._btree.range_query(-np.inf, np.inf)
            return first[0][1] if first else None
        return entry[1]

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        segment = self._locate(key, tracer)
        if segment is None:
            return None
        # Check the (small, cache-resident) buffer first.
        idx = bisect_left(segment.buf_keys, key)
        if idx < len(segment.buf_keys) and segment.buf_keys[idx] == key:
            tracer.mem(segment.region, 0)
            tracer.compute(_C.exp_search_step * max(len(segment.buf_keys).bit_length(), 1))
            return segment.buf_values[idx]
        keys = segment.keys
        n = len(keys)
        if n == 0:
            return None
        tracer.mem(segment.region, 0)
        tracer.compute(_C.linear_model)
        # The PLA prediction targets the build-time rank; subtracting
        # the segment's base rank yields the local array position.
        pos = int(segment.intercept + segment.slope * key)
        pos -= segment.base_rank
        lo = max(pos - self.epsilon - 1, 0)
        hi = min(pos + self.epsilon + 2, n)
        lo = min(max(lo, 0), n - 1)
        hi = max(min(hi, n), lo + 1)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            tracer.mem(segment.region, 64 + mid * 8)
            tracer.compute(_C.exp_search_step)
            if keys[mid] <= key:
                lo = mid
            else:
                hi = mid
        if keys[lo] == key:
            tracer.mem(segment.region, 64 + n * 8 + lo * 8)
            return segment.values[lo]
        return None

    # ------------------------------------------------------------------
    # Insertion (buffered)
    # ------------------------------------------------------------------

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        segment = self._locate(key, NULL_TRACER)
        if segment is None:
            fresh = _Segment(np.array([key]), [value], 0.0, 0.0, 0)
            self._btree.insert(key, fresh)
            self._count = 1
            return True
        if self.get(key) is not None:
            return False
        idx = bisect_left(segment.buf_keys, key)
        segment.buf_keys.insert(idx, key)
        segment.buf_values.insert(idx, value)
        self._count += 1
        if len(segment.buf_keys) > self.buffer_size:
            self._split(segment)
        return True

    def _split(self, segment: _Segment) -> None:
        """Merge a full buffer and re-segment (FITing-Tree's compaction)."""
        keys, values = segment.merged_pairs()
        self.moved_pairs += len(keys)
        self._btree.delete(segment.first_key)
        for fresh in self._segment(keys, list(values)):
            self._btree.insert(fresh.first_key, fresh)

    # ------------------------------------------------------------------
    # Ranges and introspection
    # ------------------------------------------------------------------

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        out: list[Pair] = []
        segments = self._btree.range_query(-np.inf, np.inf)
        for i, (first, segment) in enumerate(segments):
            next_first = (
                segments[i + 1][0] if i + 1 < len(segments) else np.inf
            )
            if next_first <= lo or first >= hi:
                continue
            keys, values = segment.merged_pairs()
            start = int(np.searchsorted(keys, lo, side="left"))
            for j in range(start, len(keys)):
                k = float(keys[j])
                if k >= hi:
                    return out
                out.append((k, values[j]))
        return out

    def memory_bytes(self) -> int:
        total = self._btree.memory_bytes()
        for _, segment in self._btree.range_query(-np.inf, np.inf):
            total += 32 + 16 * segment.num_pairs
        return total

    def __len__(self) -> int:
        return self._count

    def segment_count(self) -> int:
        """Number of live segments (diagnostic)."""
        return len(self._btree)
